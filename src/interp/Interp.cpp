//===- interp/Interp.cpp - Partitioned-program interpreter ----------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "obs/Trace.h"
#include "partition/Reprice.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>

using namespace paco;

namespace {

/// A runtime value. Pointers are (region, element offset) pairs; func
/// values carry the function index.
struct Value {
  TypeKind K = TypeKind::Int;
  int64_t I = 0;
  double D = 0;
  unsigned Region = KNone;
  int64_t Off = 0;
  unsigned Func = KNone;

  static Value ofInt(int64_t V) {
    Value R;
    R.K = TypeKind::Int;
    R.I = V;
    return R;
  }
  static Value ofDouble(double V) {
    Value R;
    R.K = TypeKind::Double;
    R.D = V;
    return R;
  }
  static Value ofPointer(TypeKind PtrTy, unsigned Region, int64_t Off) {
    Value R;
    R.K = PtrTy;
    R.Region = Region;
    R.Off = Off;
    return R;
  }
  static Value ofFunc(unsigned F) {
    Value R;
    R.K = TypeKind::Func;
    R.Func = F;
    return R;
  }
};

/// One memory region with its two host copies and their ground-truth
/// validity. A write on one host invalidates the other copy; a transfer
/// always sources the valid copy (the static validity certificate does
/// not constrain source-side validity -- see crossTask), and a read from
/// an invalid copy is an analysis bug the interpreter reports.
struct MemRegion {
  unsigned LocId = KNone;
  bool Live = true;
  bool ClientValid = true;
  bool ServerValid = true;
  /// Counts server-side writes to this region. The recovery ledger keys
  /// pin freshness on it: a pin taken at version V is exactly the server
  /// content until the next server store. Transfers do not bump it --
  /// they only copy content the version already describes.
  uint64_t ServerVersion = 0;
  std::vector<Value> Client, Server;
};

struct Frame {
  unsigned FuncIdx = KNone;
  std::vector<unsigned> LocalRegions;
  // Return linkage: where the caller resumes, and which caller local
  // receives the return value.
  unsigned RetFunc = KNone;
  unsigned RetBlock = KNone;
  unsigned RetDstVar = KNone;
};

/// FailFast means "no retries": the first lost attempt is terminal.
RetryPolicy effectiveRetry(const ExecOptions &Opts) {
  RetryPolicy Retry = Opts.Retry;
  if (Opts.OnLinkFailure == FaultPolicy::FailFast)
    Retry.MaxRetries = 0;
  return Retry;
}

/// Static adaptation pins the dispatched choice: degrading to local is
/// itself an adaptation, so under AdaptationPolicy::Static a message
/// that exhausts its retries becomes a structured failure instead.
FaultPolicy effectivePolicy(const ExecOptions &Opts) {
  if (Opts.Adapt.Policy == AdaptationPolicy::Static &&
      Opts.OnLinkFailure == FaultPolicy::DegradeToLocal)
    return FaultPolicy::RetryOnly;
  return Opts.OnLinkFailure;
}

class Machine {
public:
  Machine(const CompiledProgram &CP, const ExecOptions &Opts,
          const EnergyModel &Energy)
      : CP(CP), Opts(Opts), Energy(Energy),
        Sim(CP.Costs, Opts.Link, effectiveRetry(Opts), Opts.Drift,
            Opts.Crash),
        EffPolicy(effectivePolicy(Opts)),
        ClosedLoop(Opts.Adapt.Policy == AdaptationPolicy::ClosedLoop),
        EvalPeriod(std::max(1u, Opts.Adapt.EvalPeriod)),
        ProbePeriod(std::max(1u, Opts.Adapt.ProbePeriodBoundaries)),
        CrashArmed(Opts.Crash.active()), Rec(Opts.Recorder),
        Ev(Opts.Events) {
    if (ClosedLoop)
      Prof.emplace(CP.Costs, Opts.Adapt.Alpha);
  }

  ExecResult run();

private:
  //===--------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------===//

  unsigned newRegion(unsigned LocId, size_t Elems, TypeKind ElemTy) {
    MemRegion Region;
    Region.LocId = LocId;
    Value Fill = ElemTy == TypeKind::Double ? Value::ofDouble(0.0)
                                            : Value::ofInt(0);
    Fill.K = ElemTy;
    Region.Client.assign(Elems, Fill);
    Region.Server.assign(Elems, Fill);
    Regions.push_back(std::move(Region));
    unsigned Id = static_cast<unsigned>(Regions.size() - 1);
    LiveOfLoc[LocId].push_back(Id);
    return Id;
  }

  void killRegion(unsigned Id) {
    Regions[Id].Live = false;
    std::vector<unsigned> &List = LiveOfLoc[Regions[Id].LocId];
    for (size_t I = List.size(); I-- > 0;)
      if (List[I] == Id)
        List.erase(List.begin() + static_cast<long>(I));
    Regions[Id].Client.clear();
    Regions[Id].Server.clear();
  }

  std::vector<Value> &sideOf(unsigned Region) {
    return OnServer ? Regions[Region].Server : Regions[Region].Client;
  }

  bool loadMem(unsigned Region, int64_t Off, Value &Out) {
    if (Region == KNone || !Regions[Region].Live)
      return fail("dereference of invalid pointer");
    MemRegion &R = Regions[Region];
    if (!(OnServer ? R.ServerValid : R.ClientValid))
      return fail("read of an invalid copy of " +
                  CP.Memory->loc(R.LocId).Name + " (analysis bug)");
    std::vector<Value> &Data = sideOf(Region);
    if (Off < 0 || static_cast<size_t>(Off) >= Data.size())
      return fail("out-of-bounds access at offset " + std::to_string(Off));
    Out = Data[static_cast<size_t>(Off)];
    return true;
  }

  bool storeMem(unsigned Region, int64_t Off, const Value &V) {
    if (Region == KNone || !Regions[Region].Live)
      return fail("store through invalid pointer");
    MemRegion &R = Regions[Region];
    std::vector<Value> &Data = sideOf(Region);
    if (Off < 0 || static_cast<size_t>(Off) >= Data.size())
      return fail("out-of-bounds store at offset " + std::to_string(Off));
    Data[static_cast<size_t>(Off)] = V;
    // Writing makes this host's copy the truth.
    if (OnServer) {
      R.ServerValid = true;
      R.ClientValid = false;
      ++R.ServerVersion;
    } else {
      R.ClientValid = true;
      R.ServerValid = false;
    }
    return true;
  }

  //===--------------------------------------------------------------===//
  // Task transitions and transfers
  //===--------------------------------------------------------------===//

  bool taskOnServer(unsigned Task) const {
    if (Choice == KNone || Degraded || LocalFallback)
      return false;
    return CP.Partition.Choices[Choice].TaskOnServer[Task];
  }

  /// Data movements dictated by the validity states on edge (A, B).
  struct Movement {
    unsigned LocId;
    bool ToServer;
  };
  const std::vector<Movement> &transferSet(unsigned A, unsigned B);

  bool crossTask(unsigned NewTask);

  //===--------------------------------------------------------------===//
  // Timeline recording
  //
  // Segments and messages partition the run on the simulated clock:
  // every message (scheduling, transfer, registration -- the last can
  // strike mid-segment, at a malloc) closes the open segment first, so
  // span durations sum exactly to the elapsed time. All hooks are task/
  // message-grained; the per-instruction path only bumps SegInstrs.
  //===--------------------------------------------------------------===//

  void recEndSegment() {
    bool RecOpen = Rec && Rec->open();
    if (!RecOpen && !ProfSegOpen)
      return;
    Rational Now = Sim.now();
    if (ProfSegOpen) {
      Prof->observeCompute(ProfSegServer, SegInstrs, Now - ProfSegStart);
      ProfSegOpen = false;
    }
    if (RecOpen) {
      Rec->endSegment(std::move(Now), SegInstrs);
      // Registry entries are never erased, so the by-name lookup (mutex
      // + map walk) can be paid once per process, not per segment.
      static obs::Histogram &SegHist =
          obs::StatsRegistry::global().histogram("sim.task_segment_instrs");
      SegHist.record(SegInstrs);
    }
    SegInstrs = 0;
  }

  void recBeginSegment() {
    if (!Rec && !Prof)
      return;
    Rational Now = Sim.now();
    if (Rec)
      Rec->beginSegment(CurrentTask, OnServer, Now);
    if (Prof) {
      ProfSegStart = std::move(Now);
      ProfSegServer = OnServer;
      ProfSegOpen = true;
    }
  }

  /// Runs \p Send (one simulator message) and records it -- to the
  /// timeline recorder and, in a closed-loop run, to the online
  /// profiler (the observed cost spans everything the message charged,
  /// fault time included). Returns the delivery status of the send.
  template <typename SendFn>
  bool recMessage(MessageRecord::Kind K, bool ToServer, unsigned FromTask,
                  unsigned ToTask, unsigned LocId, uint64_t Bytes,
                  SendFn &&Send) {
    if (!Rec && !Prof)
      return Send();
    Rational Start = Sim.now();
    uint64_t Timeouts0 = Sim.timeouts(), Retries0 = Sim.retries();
    bool Delivered = Send();
    Rational End = Sim.now();
    if (Prof && Delivered)
      Prof->observeMessage(K, ToServer, Bytes, End - Start);
    if (Rec) {
      MessageRecord M;
      M.K = K;
      M.ToServer = ToServer;
      M.FromTask = FromTask;
      M.ToTask = ToTask;
      M.LocId = LocId;
      M.Bytes = Bytes;
      M.Timeouts = Sim.timeouts() - Timeouts0;
      M.Retries = Sim.retries() - Retries0;
      M.Delivered = Delivered;
      M.Start = std::move(Start);
      M.End = std::move(End);
      Rec->message(std::move(M));
    }
    return Delivered;
  }

  /// Starts one structured event at simulated time \p At, pre-stamped
  /// with the exact (Rational) time and the active task. Callers must
  /// check Ev first; further fields chain onto the returned builder.
  obs::EventLog::EventBuilder event(obs::LogLevel L, const char *Type,
                                    const Rational &At) {
    auto B = Ev->event(L, Type);
    B.field("t_units", At.toString());
    B.field("task", CurrentTask);
    if (CurrentTask < CP.Graph.Tasks.size())
      B.field("task_label", CP.Graph.Tasks[CurrentTask].Label);
    return B;
  }

  //===--------------------------------------------------------------===//
  // Fault recovery
  //
  // While the link can fault and the policy allows degrading, the
  // machine snapshots its full state at every task boundary (taken at
  // the top of the interpreter loop, where no instruction is mid-
  // flight). When a message later exhausts its retries, the run rolls
  // back to that snapshot and finishes on the client alone: I/O done
  // since the checkpoint is rewound with it, so outputs stay exactly
  // the all-client outputs.
  //===--------------------------------------------------------------===//

  struct Checkpoint {
    std::vector<MemRegion> Regions;
    std::map<unsigned, std::vector<unsigned>> LiveOfLoc;
    std::vector<Frame> Stack;
    unsigned CurrentTask = KNone;
    unsigned CurFunc = KNone;
    unsigned CurBlock = KNone;
    size_t InstrIdx = 0;
    size_t InputPos = 0;
    size_t OutputCount = 0;
  };

  void takeCheckpoint() {
    Ckpt.Regions = Regions;
    Ckpt.LiveOfLoc = LiveOfLoc;
    Ckpt.Stack = Stack;
    Ckpt.CurrentTask = CurrentTask;
    Ckpt.CurFunc = CurFunc;
    Ckpt.CurBlock = CurBlock;
    Ckpt.InstrIdx = InstrIdx;
    Ckpt.InputPos = InputPos;
    Ckpt.OutputCount = Result.Outputs.size();
  }

  /// Restores the last checkpoint and resumes on the client -- either as
  /// a permanent degrade (the PR-1 behavior) or, under ClosedLoop with
  /// probe budget left, as a temporary LocalFallback the recovery probes
  /// can later lift. The snapshot is moved out: every rollback consumes a
  /// checkpoint taken since the previous rollback (boundary checkpoints,
  /// the redispatch checkpoint, or the pre-re-offload checkpoint
  /// maybeProbe takes), so no checkpoint is ever restored twice.
  void restoreCheckpoint() {
    recEndSegment(); // The failed message may have left no open segment.
    Regions = std::move(Ckpt.Regions);
    LiveOfLoc = std::move(Ckpt.LiveOfLoc);
    Stack = std::move(Ckpt.Stack);
    CurrentTask = Ckpt.CurrentTask;
    CurFunc = Ckpt.CurFunc;
    CurBlock = Ckpt.CurBlock;
    InstrIdx = Ckpt.InstrIdx;
    InputPos = Ckpt.InputPos;
    Result.Outputs.resize(Ckpt.OutputCount);
    OnServer = false;
    // The client recovers data it had shipped to the server from its
    // shadow copies (the checkpoint retains them while the server is
    // alive); after this merge plus the ledger restores below, the
    // client copy of every live region is authoritative.
    for (MemRegion &Region : Regions)
      if (Region.Live && !Region.ClientValid && Region.ServerValid) {
        Region.Client = Region.Server;
        Region.ClientValid = true;
      }
    // After a crash the server copies are gone (onServerCrash invalidated
    // them in the snapshot too): items whose authoritative copy died come
    // back from the client-held recovery ledger. Sync-before-checkpoint
    // and the never-evict-needed-pins rule guarantee a version-matched
    // pin for each; a miss here is an internal invariant violation.
    uint64_t Restored = 0;
    for (unsigned Id = 0; Id != Regions.size(); ++Id) {
      MemRegion &Region = Regions[Id];
      if (!Region.Live || Region.ClientValid || Region.ServerValid)
        continue;
      auto It = Ledger.find(Id);
      if (It == Ledger.end() || It->second.Version != Region.ServerVersion) {
        fail("server crash lost " + CP.Memory->loc(Region.LocId).Name +
                 " and the recovery ledger has no matching pin (ledger bug)",
             ExecResult::FailureKind::ServerCrash);
        return;
      }
      Region.Client = It->second.Data;
      Region.ClientValid = true;
      ++Restored;
    }
    LedgerRestores += Restored;
    // Pins for regions the rewind destroyed are dead weight.
    for (auto It = Ledger.begin(); It != Ledger.end();) {
      if (It->first >= Regions.size() || !Regions[It->first].Live) {
        PinnedBytes -= It->second.Bytes;
        It = Ledger.erase(It);
      } else {
        ++It;
      }
    }
    // Probing keeps the fallback temporary while budget remains; without
    // it (or without the closed loop) the degrade is permanent.
    if (ClosedLoop && ProbesSent < Opts.Adapt.ProbeBudget) {
      LocalFallback = true;
      LastFallbackTask = CurrentTask;
      FallbackBoundaries = 0;
    } else {
      Degraded = true;
      LocalFallback = false;
    }
    ++Fallbacks;
    obs::StatsRegistry::global().counter("sim.fallbacks").add();
    if (Restored)
      obs::StatsRegistry::global()
          .counter("recovery.ledger_restores")
          .add(Restored);
    if (obs::Tracer::global().enabled())
      obs::Tracer::global().instantEvent(
          "sim.fallback", "sim",
          {{"resume_task", CP.Graph.Tasks[CurrentTask].Label},
           {"restored", Restored},
           {"permanent", LocalFallback ? "false" : "true"}});
    if (Rec) {
      RecoveryMark M;
      M.K = RecoveryMark::Kind::Fallback;
      M.At = Sim.now();
      M.AtTask = CurrentTask;
      M.Restored = Restored;
      Rec->recovery(std::move(M));
    }
    if (Ev)
      event(obs::LogLevel::Info, "fallback", Sim.now())
          .field("restored", Restored)
          .field("permanent", !LocalFallback);
    recBeginSegment(); // Resume the timeline on the client.
  }

  /// Called when a message exhausted its retries. Either requests a
  /// rollback (DegradeToLocal) or fails the run with a structured
  /// LinkFailure classification.
  bool linkLost(const char *What) {
    if (EffPolicy == FaultPolicy::DegradeToLocal) {
      WantRollback = true;
      return false;
    }
    return fail(std::string("link failure: ") + What + " lost after " +
                    std::to_string(Sim.timeouts()) + " timed-out attempt(s)",
                ExecResult::FailureKind::LinkFailure);
  }

  /// Turns a pending rollback request into an actual restore; returns
  /// false when the failure was not a recoverable link fault.
  bool rollback() {
    if (!WantRollback)
      return false;
    // A crash may have crossed during the failed message itself (its
    // retries can outlive the server). Process it before restoring: the
    // snapshot's server copies must be invalidated first, so the shadow
    // merge cannot "recover" data from a dead process -- only the
    // ledger can.
    if (CrashArmed && Sim.serverEventPending()) {
      bool Crashed = false, Restarted = false;
      Rational CrashedAt, RestartedAt;
      Sim.takeServerEvents(Crashed, CrashedAt, Restarted, RestartedAt);
      if (Crashed)
        onServerCrash(CrashedAt); // Re-requests the same rollback.
      if (Restarted) {
        if (Rec) {
          RecoveryMark M;
          M.K = RecoveryMark::Kind::Restart;
          M.At = RestartedAt;
          M.AtTask = CurrentTask;
          Rec->recovery(std::move(M));
        }
        if (Ev)
          event(obs::LogLevel::Info, "server-restart", RestartedAt);
      }
    }
    WantRollback = false;
    if (Failed)
      return false;
    restoreCheckpoint();
    return !Failed;
  }

  //===--------------------------------------------------------------===//
  // Server-failure recovery
  //
  // A scheduled crash kills the server process: every server-resident
  // authoritative copy is gone and the in-flight server task aborts.
  // While a crash schedule is armed, the client maintains a bounded
  // recovery ledger -- pinned copies of every data item whose only
  // valid copy lives server-side, refreshed at each task boundary
  // *before* the checkpoint and committed atomically with it, so the
  // pins are exactly as old as the snapshot they protect. Recovery
  // rolls back to the last boundary, restores the lost items from the
  // ledger, and resumes on the client with exactly-once task
  // semantics; under ClosedLoop, priced probes then test whether a
  // restarted server is worth re-offloading to.
  //===--------------------------------------------------------------===//

  /// Handles a crash event the simulated clock crossed. Returns false
  /// when the caller must roll back (WantRollback set) or the run
  /// failed; true when the crash needs no further action.
  bool onServerCrash(const Rational &At) {
    if (Rec) {
      RecoveryMark M;
      M.K = RecoveryMark::Kind::Crash;
      M.At = At;
      M.AtTask = CurrentTask;
      Rec->recovery(std::move(M));
    }
    if (Ev)
      event(obs::LogLevel::Warn, "server-crash", At);
    // The server process died: both the live state and the snapshot lose
    // their server-side copies (the snapshot's "server" halves lived in
    // the same process).
    for (MemRegion &Region : Regions)
      Region.ServerValid = false;
    for (MemRegion &Region : Ckpt.Regions)
      Region.ServerValid = false;
    if (Choice == KNone || Degraded || LocalFallback)
      return true; // Already running entirely on the client.
    if (EffPolicy != FaultPolicy::DegradeToLocal || !CheckpointsOn)
      return fail("server crashed at t=" + At.toString() +
                      " and the policy has no recovery path",
                  ExecResult::FailureKind::ServerCrash);
    ++CrashRecoveries;
    obs::StatsRegistry::global().counter("recovery.crash_rollbacks").add();
    WantRollback = true;
    return false;
  }

  /// One pinned client-held copy of a server-authoritative data item.
  struct LedgerPin {
    uint64_t Version = 0;  ///< MemRegion::ServerVersion at pin time.
    uint64_t Bytes = 0;    ///< Accounting size (budget + transfer price).
    uint64_t LastUsed = 0; ///< LRU stamp (LedgerSeq).
    bool Needed = false;   ///< The current checkpoint depends on it.
    std::vector<Value> Data;
  };

  /// Pre-checkpoint ledger sync: makes sure every live region whose
  /// authoritative copy is server-side has a version-matched pin,
  /// charging one s2c transfer per stale or missing pin. Fetched copies
  /// land in PendingPins and commit only together with the checkpoint
  /// (commitLedger), so a failure or crash mid-sync leaves the ledger
  /// consistent with the previous checkpoint. Returns false on link
  /// failure (WantRollback set); returns true early, without touching
  /// the ledger, when a server event crossed mid-sync (the caller
  /// re-checks before checkpointing).
  bool syncLedger() {
    PendingPins.clear();
    // Sweep pins whose region died since the last boundary.
    for (auto It = Ledger.begin(); It != Ledger.end();) {
      if (It->first >= Regions.size() || !Regions[It->first].Live) {
        PinnedBytes -= It->second.Bytes;
        It = Ledger.erase(It);
      } else {
        ++It;
      }
    }
    bool SplitSegment = false;
    for (unsigned Id = 0; Id != Regions.size(); ++Id) {
      MemRegion &Region = Regions[Id];
      bool Needed =
          Region.Live && !Region.ClientValid && Region.ServerValid;
      auto It = Ledger.find(Id);
      if (It != Ledger.end()) {
        It->second.Needed = Needed;
        if (Needed && It->second.Version == Region.ServerVersion) {
          It->second.LastUsed = ++LedgerSeq;
          continue; // Pin still matches the server content.
        }
      }
      if (!Needed)
        continue;
      if (Sim.serverEventPending()) {
        if (SplitSegment)
          recBeginSegment();
        return true; // Crash first; no checkpoint will be taken.
      }
      uint64_t Bytes = Region.Server.size() *
                       elementBytes(CP.Memory->loc(Region.LocId).ElemType);
      // The pin rides the real (charged, lossy) link as an s2c transfer;
      // like any message it splits the open segment.
      if (!SplitSegment) {
        recEndSegment();
        SplitSegment = true;
      }
      if (!recMessage(MessageRecord::Kind::LedgerSync, false, CurrentTask,
                      CurrentTask, Region.LocId, Bytes,
                      [&] { return Sim.tryLedgerSync(Bytes); }))
        return linkLost("recovery-ledger sync");
      if (EvictedOnce.count(Id)) {
        ++LedgerRefetches;
        EvictedOnce.erase(Id);
        obs::StatsRegistry::global()
            .counter("recovery.ledger_refetches")
            .add();
        if (Ev)
          event(obs::LogLevel::Info, "ledger-refetch", Sim.now())
              .field("region", Id)
              .field("loc", CP.Memory->loc(Region.LocId).Name)
              .field("bytes", Bytes);
      }
      LedgerPin Pin;
      Pin.Version = Region.ServerVersion;
      Pin.Bytes = Bytes;
      Pin.LastUsed = ++LedgerSeq;
      Pin.Needed = true;
      Pin.Data = Region.Server;
      PendingPins.emplace_back(Id, std::move(Pin));
    }
    if (SplitSegment)
      recBeginSegment();
    return true;
  }

  /// Commits the pins syncLedger fetched, then enforces the byte budget
  /// by LRU-evicting pins the just-taken checkpoint does not depend on.
  /// Needed pins are never evicted: the budget is a soft target with a
  /// hard safety floor (a needed pin is the only recovery source for its
  /// item).
  void commitLedger() {
    for (auto &[Id, Pin] : PendingPins) {
      auto It = Ledger.find(Id);
      if (It != Ledger.end())
        PinnedBytes -= It->second.Bytes;
      PinnedBytes += Pin.Bytes;
      Ledger[Id] = std::move(Pin);
    }
    PendingPins.clear();
    while (PinnedBytes > Opts.LedgerBudgetBytes) {
      auto Victim = Ledger.end();
      for (auto It = Ledger.begin(); It != Ledger.end(); ++It)
        if (!It->second.Needed &&
            (Victim == Ledger.end() ||
             It->second.LastUsed < Victim->second.LastUsed))
          Victim = It;
      if (Victim == Ledger.end())
        break; // Everything left is load-bearing.
      PinnedBytes -= Victim->second.Bytes;
      EvictedOnce.insert(Victim->first);
      ++LedgerEvictions;
      obs::StatsRegistry::global().counter("recovery.ledger_evictions").add();
      if (Ev) {
        unsigned Id = Victim->first;
        event(obs::LogLevel::Info, "ledger-evict", Sim.now())
            .field("region", Id)
            .field("loc", Id < Regions.size()
                              ? CP.Memory->loc(Regions[Id].LocId).Name
                              : std::string("?"))
            .field("bytes", Victim->second.Bytes)
            .field("pinned_bytes", PinnedBytes);
      }
      Ledger.erase(Victim);
    }
    LedgerPeakBytes = std::max(LedgerPeakBytes, PinnedBytes);
    obs::StatsRegistry::global()
        .histogram("recovery.ledger_pinned_bytes")
        .record(PinnedBytes);
  }

  /// Spends the probe budget: the fallback becomes a permanent degrade.
  void exhaustProbes() {
    Degraded = true;
    LocalFallback = false;
    obs::StatsRegistry::global()
        .counter("recovery.probe_budget_exhausted")
        .add();
    if (obs::Tracer::global().enabled())
      obs::Tracer::global().instantEvent(
          "recovery.probe_exhausted", "sim",
          {{"probes", ProbesSent}});
    if (Rec) {
      RecoveryMark M;
      M.K = RecoveryMark::Kind::Exhausted;
      M.At = Sim.now();
      M.AtTask = CurrentTask;
      Rec->recovery(std::move(M));
    }
    if (Ev)
      event(obs::LogLevel::Warn, "probe-exhausted", Sim.now())
          .field("probes", ProbesSent);
  }

  /// Runs at each task boundary of a LocalFallback run: every
  /// ProbePeriod boundaries, sends one model-priced probe. A delivered
  /// probe feeds the profiler and reprices local-vs-remote under the
  /// profiled model; when the best remote cut clears the hysteresis
  /// margin, the run checkpoints and re-dispatches to it. Returns false
  /// when a re-dispatch message was lost (caller rolls back -- into
  /// fallback again).
  bool maybeProbe() {
    ++FallbackBoundaries;
    if (FallbackBoundaries % ProbePeriod != 0)
      return true;
    if (ProbesSent >= Opts.Adapt.ProbeBudget) {
      // Reachable when the final probe succeeded but repricing kept the
      // run local: the budget is gone, so stop paying for boundaries.
      exhaustProbes();
      return true;
    }
    ++ProbesSent;
    recEndSegment(); // The probe splits the open segment.
    bool Up = recMessage(MessageRecord::Kind::Probe, true, CurrentTask,
                         CurrentTask, KNone, Opts.Adapt.ProbeBytes,
                         [&] { return Sim.tryProbe(Opts.Adapt.ProbeBytes); });
    if (obs::Tracer::global().enabled())
      obs::Tracer::global().instantEvent(
          "recovery.probe", "sim",
          {{"delivered", Up ? "true" : "false"},
           {"probes_sent", ProbesSent}});
    if (Ev)
      event(obs::LogLevel::Info, "probe", Sim.now())
          .field("delivered", Up)
          .field("probes_sent", ProbesSent)
          .field("probe_bytes", Opts.Adapt.ProbeBytes);
    if (!Up) {
      if (ProbesSent >= Opts.Adapt.ProbeBudget)
        exhaustProbes();
      recBeginSegment();
      return true; // Still down (or still crashed); keep running local.
    }
    // The server answered and the profiler just folded the probe's
    // observed cost into its c2s scale. Reprice staying local against
    // every computed cut under the live model; re-offload only when the
    // best remote cut beats local by the switch margin (same hysteresis
    // bar as the drift detector's).
    CostModel Profiled = Prof->model();
    Rational Stay = reprice(KNone, Profiled);
    unsigned Best = KNone;
    Rational BestCost = Stay;
    for (unsigned C = 0; C != CP.Partition.Choices.size(); ++C) {
      Rational Cost = reprice(C, Profiled);
      if (Cost < BestCost) {
        Best = C;
        BestCost = Cost;
      }
    }
    static const Rational One(1);
    if (Best == KNone ||
        !(BestCost <= Stay * (One - Opts.Adapt.SwitchMargin)) ||
        Result.Redispatches.size() >= Opts.Adapt.MaxRedispatches) {
      recBeginSegment();
      return true; // Remote not (sufficiently) worth it yet.
    }
    // Leave the fallback and re-dispatch. A fresh checkpoint first: the
    // one the fallback rolled back to was consumed by that restore, and
    // a lost reconciliation message below must land here, not there.
    Choice = KNone; // The incumbent really is all-client now.
    LocalFallback = false;
    takeCheckpoint();
    if (!redispatch(Best, std::move(Stay), std::move(BestCost)))
      return false;
    ++Reoffloads;
    obs::StatsRegistry::global().counter("recovery.reoffloads").add();
    if (Rec) {
      RecoveryMark M;
      M.K = RecoveryMark::Kind::Reoffload;
      M.At = Sim.now();
      M.AtTask = CurrentTask;
      Rec->recovery(std::move(M));
    }
    if (Ev)
      event(obs::LogLevel::Info, "re-offload", Sim.now())
          .field("to_choice", Best);
    return true;
  }

  //===--------------------------------------------------------------===//
  // Closed-loop adaptation
  //
  // At every task-boundary checkpoint of a ClosedLoop run, the drift
  // detector re-prices the computed cuts (plus the all-client
  // fallback) under the profiler's live cost model and, with
  // hysteresis, switches the rest of the run to the cheapest one. A
  // switch reconciles memory validity with the new choice's entry
  // assumptions through real (charged, lossy) messages, so the run
  // stays bit-identical to the all-client outputs and any failure
  // lands in the ordinary rollback-and-degrade path.
  //===--------------------------------------------------------------===//

  /// Re-prices choice \p C (KNone = all-client) at the run's parameter
  /// point under \p Model.
  Rational reprice(unsigned C, const CostModel &Model) const {
    return repriceChoice(CP.Graph, *CP.Memory, CP.Problem, CP.Partition, C,
                         FullPoint, Model);
  }

  /// The drift detector; runs right after a boundary checkpoint.
  /// Returns false when a reconciliation message was lost (the caller
  /// rolls back, exactly like any other link failure).
  bool maybeAdapt();

  /// Switches the run to \p NewChoice at the current boundary.
  bool redispatch(unsigned NewChoice, Rational Stay, Rational Go);

  /// Makes the \p ToServer copy of loc \p D's live regions valid,
  /// charging one transfer when anything is stale; false on link
  /// failure.
  bool migrateLoc(unsigned D, bool ToServer);

  //===--------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------===//

  bool fail(const std::string &Message, ExecResult::FailureKind Kind =
                                            ExecResult::FailureKind::BadInput) {
    if (Result.Error.empty()) {
      Result.Error = Message;
      Result.Failure = Kind;
      if (CurFunc != KNone) {
        Result.Error += " [in " + CP.Module->Functions[CurFunc]->Name +
                        " bb" + std::to_string(CurBlock) + " instr " +
                        std::to_string(InstrIdx) + " task " +
                        std::to_string(CurrentTask) +
                        (OnServer ? " on server]" : " on client]");
      }
    }
    Failed = true;
    return false;
  }

  Frame &frame() { return Stack.back(); }
  const IRFunction &func() const { return *CP.Module->Functions[CurFunc]; }

  bool evalOperand(const Operand &O, Value &Out);
  bool writeLocal(unsigned Var, const Value &V) {
    return storeMem(frame().LocalRegions[Var], 0, V);
  }

  bool pushFrame(unsigned FuncIdx, unsigned RetFunc, unsigned RetBlock,
                 unsigned RetDstVar);

  bool execInstr(const Instr &I);
  bool execArith(const Instr &I);
  int64_t nextInput() {
    if (InputPos >= Opts.Inputs.size())
      return 0;
    return Opts.Inputs[InputPos++];
  }

  bool enterBlock(unsigned FuncIdx, unsigned Block);

  const CompiledProgram &CP;
  const ExecOptions &Opts;
  EnergyModel Energy;
  Simulator Sim;
  FaultPolicy EffPolicy;
  bool ClosedLoop = false;
  unsigned EvalPeriod = 1;
  std::optional<OnlineProfiler> Prof; ///< Armed iff ClosedLoop.
  std::vector<Rational> FullPoint;    ///< Parameter point (closed loop /
                                      ///< dispatch).
  ExecResult Result;

  std::vector<MemRegion> Regions;
  std::map<unsigned, std::vector<unsigned>> LiveOfLoc;
  std::vector<unsigned> GlobalRegion; ///< Region per module global.
  std::vector<unsigned> RetRegion;    ///< Region per function ret loc.
  std::vector<Frame> Stack;

  unsigned Choice = KNone;
  unsigned CurrentTask = KNone;
  bool OnServer = false;
  unsigned CurFunc = KNone;
  unsigned CurBlock = KNone;
  size_t InstrIdx = 0;
  size_t InputPos = 0;
  uint64_t Executed = 0;
  bool Failed = false;
  bool Finished = false;

  Checkpoint Ckpt;
  bool CheckpointsOn = false; ///< Snapshot at task boundaries.
  bool Degraded = false;      ///< Link declared dead; run pinned to client.
  bool WantRollback = false;  ///< A link failure requested a rollback.
  uint64_t Fallbacks = 0;

  // Server-failure recovery state.
  unsigned ProbePeriod = 1;   ///< Boundaries between recovery probes.
  bool CrashArmed = false;    ///< A crash schedule is active.
  bool LedgerOn = false;      ///< Maintain the recovery ledger.
  bool LocalFallback = false; ///< Degraded, but probing may lift it.
  std::map<unsigned, LedgerPin> Ledger; ///< Pins, keyed by region id.
  std::vector<std::pair<unsigned, LedgerPin>> PendingPins;
  std::set<unsigned> EvictedOnce; ///< Evicted ids (refetch accounting).
  uint64_t PinnedBytes = 0;
  uint64_t LedgerSeq = 0; ///< Monotone LRU clock.
  unsigned LastFallbackTask = KNone;
  uint64_t FallbackBoundaries = 0;
  unsigned ProbesSent = 0;
  uint64_t CrashRecoveries = 0;
  uint64_t LedgerRestores = 0;
  uint64_t LedgerEvictions = 0;
  uint64_t LedgerRefetches = 0;
  uint64_t LedgerPeakBytes = 0;
  uint64_t Reoffloads = 0;

  std::map<std::pair<unsigned, unsigned>, std::vector<Movement>>
      MovementCache;
  std::vector<uint64_t> TaskInstrCounts;

  RuntimeRecorder *Rec = nullptr;
  obs::EventLog *Ev = nullptr;
  uint64_t SegInstrs = 0; ///< Instructions in the open timeline segment.

  // Drift-detector state: boundary counters for the evaluation cadence
  // and dwell, and the challenger's confirmation streak.
  uint64_t Boundaries = 0;
  uint64_t BoundariesSinceSwitch = 0;
  bool HavePending = false;
  unsigned PendingChoice = KNone;
  unsigned PendingStreak = 0;
  // Profiler's view of the open segment (tracked independently of the
  // optional timeline recorder).
  bool ProfSegOpen = false;
  bool ProfSegServer = false;
  Rational ProfSegStart;
};

const std::vector<Machine::Movement> &Machine::transferSet(unsigned A,
                                                           unsigned B) {
  auto Key = std::make_pair(A, B);
  auto It = MovementCache.find(Key);
  if (It != MovementCache.end())
    return It->second;
  std::vector<Movement> Moves;
  if (Choice != KNone) {
    for (unsigned D : CP.Problem.DataItems) {
      auto UIt = CP.Problem.VNodes.find({A, D});
      auto VIt = CP.Problem.VNodes.find({B, D});
      if (UIt == CP.Problem.VNodes.end() || VIt == CP.Problem.VNodes.end())
        continue;
      const ValidityNodes &U = UIt->second;
      const ValidityNodes &V = VIt->second;
      bool VsoU = CP.Partition.nodeValue(Choice, U.Vso);
      bool VsiV = CP.Partition.nodeValue(Choice, V.Vsi);
      bool VcoU = !CP.Partition.nodeValue(Choice, U.NVco);
      bool VciV = !CP.Partition.nodeValue(Choice, V.NVci);
      // Client-to-server: the item becomes server-valid on this edge.
      if (!VsoU && VsiV)
        Moves.push_back({D, /*ToServer=*/true});
      // Server-to-client.
      if (!VcoU && VciV)
        Moves.push_back({D, /*ToServer=*/false});
    }
  }
  return MovementCache.emplace(Key, std::move(Moves)).first->second;
}

bool Machine::crossTask(unsigned NewTask) {
  unsigned OldTask = CurrentTask;
  CurrentTask = NewTask;
  recEndSegment();
  // A degraded (or probing-fallback) run self-schedules everything on the
  // client: no messages, no transfers, exactly like running under the
  // all-client partitioning.
  if (Choice == KNone || Degraded || LocalFallback) {
    recBeginSegment();
    return true;
  }
  bool NewServer = taskOnServer(NewTask);
  if (NewServer != OnServer) {
    if (!recMessage(MessageRecord::Kind::Schedule, NewServer, OldTask,
                    NewTask, KNone, 0,
                    [&] { return Sim.trySchedule(/*ToServer=*/NewServer); }))
      return linkLost("task-scheduling message");
    OnServer = NewServer;
    if (obs::Tracer::global().enabled())
      obs::Tracer::global().instantEvent(
          "sim.schedule", "sim",
          {{"from_task", CP.Graph.Tasks[OldTask].Label},
           {"to_task", CP.Graph.Tasks[NewTask].Label},
           {"dir", NewServer ? "c2s" : "s2c"}});
  }
  static const bool Trace = std::getenv("PACO_TRACE_TRANSFERS") != nullptr;
  for (const Movement &Move : transferSet(OldTask, NewTask)) {
    if (Trace)
      std::fprintf(stderr, "[transfer] %s -> %s : %s %s\n",
                   CP.Graph.Tasks[OldTask].Label.c_str(),
                   CP.Graph.Tasks[NewTask].Label.c_str(),
                   CP.Memory->loc(Move.LocId).Name.c_str(),
                   Move.ToServer ? "c2s" : "s2c");
    uint64_t Bytes = 0;
    unsigned ElemBytes = elementBytes(CP.Memory->loc(Move.LocId).ElemType);
    auto LiveIt = LiveOfLoc.find(Move.LocId);
    if (LiveIt != LiveOfLoc.end())
      for (unsigned RegionId : LiveIt->second)
        Bytes += Regions[RegionId].Client.size() * ElemBytes;
    // Drive the message through the (possibly lossy) link first; the
    // destination copies change only when the data actually arrives.
    if (!recMessage(MessageRecord::Kind::Transfer, Move.ToServer, OldTask,
                    NewTask, Move.LocId, Bytes,
                    [&] { return Sim.tryTransfer(Move.ToServer, Bytes); }))
      return linkLost("data transfer");
    if (obs::Tracer::global().enabled())
      obs::Tracer::global().instantEvent(
          "sim.transfer", "sim",
          {{"from_task", CP.Graph.Tasks[OldTask].Label},
           {"to_task", CP.Graph.Tasks[NewTask].Label},
           {"data", CP.Memory->loc(Move.LocId).Name},
           {"loc", static_cast<uint64_t>(Move.LocId)},
           {"bytes", Bytes},
           {"dir", Move.ToServer ? "c2s" : "s2c"}});
    if (LiveIt != LiveOfLoc.end()) {
      for (unsigned RegionId : LiveIt->second) {
        // The transfer's purpose is to validate the destination copy; the
        // data always comes from the currently valid copy (the static
        // certificate may schedule a transfer whose nominal source copy
        // is stale -- nothing in the paper's constraint system forbids
        // it -- in which case the destination is already up to date and
        // only the cost is charged).
        MemRegion &Region = Regions[RegionId];
        if (Move.ToServer) {
          if (Region.ClientValid) {
            Region.Server = Region.Client;
            Region.ServerValid = true;
          }
        } else {
          if (Region.ServerValid) {
            Region.Client = Region.Server;
            Region.ClientValid = true;
          }
        }
      }
    }
  }
  recBeginSegment();
  return true;
}

bool Machine::maybeAdapt() {
  ++Boundaries;
  ++BoundariesSinceSwitch;
  if (Boundaries % EvalPeriod != 0)
    return true;
  if (Prof->samples() < Opts.Adapt.MinSamples)
    return true;
  if (Result.Redispatches.size() >= Opts.Adapt.MaxRedispatches)
    return true;

  CostModel Profiled = Prof->model();
  Rational Stay = reprice(Choice, Profiled);
  // Candidates: every computed cut plus the all-client fallback -- the
  // safe landing when the profiled point matches no region at all.
  unsigned Best = Choice;
  Rational BestCost = Stay;
  for (unsigned C = 0; C <= CP.Partition.Choices.size(); ++C) {
    unsigned Cand = C == CP.Partition.Choices.size() ? KNone : C;
    if (Cand == Choice)
      continue;
    Rational Cost = reprice(Cand, Profiled);
    if (Cost < BestCost) {
      Best = Cand;
      BestCost = Cost;
    }
  }

  // Hysteresis: the challenger must beat the incumbent by the margin,
  // keep winning for ConfirmEvals consecutive evaluations, and the run
  // must have dwelt on the incumbent long enough.
  static const Rational One(1);
  if (Best == Choice ||
      !(BestCost <= Stay * (One - Opts.Adapt.SwitchMargin))) {
    HavePending = false;
    PendingStreak = 0;
    return true;
  }
  if (!HavePending || PendingChoice != Best) {
    HavePending = true;
    PendingChoice = Best;
    PendingStreak = 1;
  } else {
    ++PendingStreak;
  }
  if (PendingStreak < Opts.Adapt.ConfirmEvals ||
      BoundariesSinceSwitch < Opts.Adapt.MinDwellBoundaries)
    return true;
  return redispatch(Best, std::move(Stay), std::move(BestCost));
}

bool Machine::migrateLoc(unsigned D, bool ToServer) {
  auto LiveIt = LiveOfLoc.find(D);
  if (LiveIt == LiveOfLoc.end() || LiveIt->second.empty())
    return true;
  bool Stale = false;
  uint64_t Bytes = 0;
  unsigned ElemBytes = elementBytes(CP.Memory->loc(D).ElemType);
  for (unsigned RegionId : LiveIt->second) {
    const MemRegion &Region = Regions[RegionId];
    Stale = Stale || !(ToServer ? Region.ServerValid : Region.ClientValid);
    Bytes += Region.Client.size() * ElemBytes;
  }
  if (!Stale)
    return true;
  if (!recMessage(MessageRecord::Kind::Transfer, ToServer, CurrentTask,
                  CurrentTask, D, Bytes,
                  [&] { return Sim.tryTransfer(ToServer, Bytes); }))
    return linkLost("re-dispatch data transfer");
  for (unsigned RegionId : LiveIt->second) {
    // Like crossTask: the valid copy is the source; a region whose
    // destination copy is already valid is untouched.
    MemRegion &Region = Regions[RegionId];
    if (ToServer) {
      if (Region.ClientValid) {
        Region.Server = Region.Client;
        Region.ServerValid = true;
      }
    } else {
      if (Region.ServerValid) {
        Region.Client = Region.Server;
        Region.ClientValid = true;
      }
    }
  }
  return true;
}

bool Machine::redispatch(unsigned NewChoice, Rational Stay, Rational Go) {
  recEndSegment(); // The switch happens between tasks.
  ExecResult::RedispatchEvent E;
  E.At = Sim.now();
  E.AtTask = CurrentTask;
  E.FromChoice = Choice;
  E.ToChoice = NewChoice;
  E.PredictedStay = std::move(Stay);
  E.PredictedSwitch = std::move(Go);

  Choice = NewChoice;
  // The cached movement sets encode the old choice's certificate.
  MovementCache.clear();

  // Reconcile the live state with the new choice's entry assumptions at
  // this boundary through real (charged, lossy) messages: move the host
  // if the boundary task now runs elsewhere, then make every copy the
  // new certificate claims valid at this task actually valid. A lost
  // message lands in the ordinary rollback path against the checkpoint
  // just taken.
  bool NewServer = taskOnServer(CurrentTask);
  if (NewServer != OnServer) {
    if (!recMessage(MessageRecord::Kind::Schedule, NewServer, CurrentTask,
                    CurrentTask, KNone, 0,
                    [&] { return Sim.trySchedule(NewServer); }))
      return linkLost("re-dispatch scheduling message");
    OnServer = NewServer;
  }
  if (Choice == KNone) {
    // All-client from here on: every live region must be client-valid.
    for (const auto &[D, RegionList] : LiveOfLoc) {
      (void)RegionList;
      if (!migrateLoc(D, /*ToServer=*/false))
        return false;
    }
  } else {
    for (unsigned D : CP.Problem.DataItems) {
      auto It = CP.Problem.VNodes.find({CurrentTask, D});
      if (It == CP.Problem.VNodes.end())
        continue;
      if (CP.Partition.nodeValue(Choice, It->second.Vsi) &&
          !migrateLoc(D, /*ToServer=*/true))
        return false;
      if (!CP.Partition.nodeValue(Choice, It->second.NVci) &&
          !migrateLoc(D, /*ToServer=*/false))
        return false;
    }
  }
  // The completed switch is the new rollback anchor and dwell origin.
  takeCheckpoint();
  BoundariesSinceSwitch = 0;
  HavePending = false;
  PendingStreak = 0;

  obs::StatsRegistry::global().counter("sim.redispatches").add();
  auto choiceArg = [](unsigned C) {
    return C == KNone ? std::string("local") : std::to_string(C);
  };
  if (obs::Tracer::global().enabled())
    obs::Tracer::global().instantEvent(
        "adapt.redispatch", "sim",
        {{"at_task", CP.Graph.Tasks[E.AtTask].Label},
         {"from_choice", choiceArg(E.FromChoice)},
         {"to_choice", choiceArg(E.ToChoice)},
         {"predicted_stay", E.PredictedStay.toString()},
         {"predicted_switch", E.PredictedSwitch.toString()}});
  if (Rec) {
    AdaptMark M;
    M.At = E.At;
    M.AtTask = E.AtTask;
    M.FromChoice = E.FromChoice;
    M.ToChoice = E.ToChoice;
    M.PredictedStay = E.PredictedStay;
    M.PredictedSwitch = E.PredictedSwitch;
    Rec->adapt(std::move(M));
  }
  if (Ev)
    event(obs::LogLevel::Info, "redispatch", E.At)
        .field("from_choice", choiceArg(E.FromChoice))
        .field("to_choice", choiceArg(E.ToChoice))
        .field("predicted_stay", E.PredictedStay.toString())
        .field("predicted_switch", E.PredictedSwitch.toString());
  Result.Redispatches.push_back(std::move(E));
  recBeginSegment();
  return true;
}

bool Machine::evalOperand(const Operand &O, Value &Out) {
  switch (O.K) {
  case Operand::Kind::ConstInt:
    Out = Value::ofInt(O.IntVal);
    return true;
  case Operand::Kind::ConstFloat:
    Out = Value::ofDouble(O.FloatVal);
    return true;
  case Operand::Kind::Local:
    return loadMem(frame().LocalRegions[O.Index], 0, Out);
  case Operand::Kind::Global:
    return loadMem(GlobalRegion[O.Index], 0, Out);
  case Operand::Kind::FuncRef:
    Out = Value::ofFunc(O.Index);
    return true;
  case Operand::Kind::RtParam:
    Out = Value::ofInt(Opts.ParamValues[O.Index]);
    return true;
  case Operand::Kind::None:
    Out = Value();
    return true;
  }
  return fail("bad operand");
}

bool Machine::pushFrame(unsigned FuncIdx, unsigned RetFunc, unsigned RetBlock,
                        unsigned RetDstVar) {
  if (Stack.size() > 4096)
    return fail("call stack overflow");
  Frame F;
  F.FuncIdx = FuncIdx;
  F.RetFunc = RetFunc;
  F.RetBlock = RetBlock;
  F.RetDstVar = RetDstVar;
  const IRFunction &Fn = *CP.Module->Functions[FuncIdx];
  F.LocalRegions.reserve(Fn.Locals.size());
  for (unsigned L = 0; L != Fn.Locals.size(); ++L) {
    const LocalVar &Var = Fn.Locals[L];
    size_t Elems = Var.IsArray ? static_cast<size_t>(Var.ArraySize) : 1;
    F.LocalRegions.push_back(
        newRegion(CP.Memory->localLoc(FuncIdx, L), Elems, Var.Type));
  }
  Stack.push_back(std::move(F));
  return true;
}

bool Machine::enterBlock(unsigned FuncIdx, unsigned Block) {
  CurFunc = FuncIdx;
  CurBlock = Block;
  InstrIdx = 0;
  unsigned Task = CP.Graph.taskOfBlock(FuncIdx, Block);
  if (Task != CurrentTask)
    return crossTask(Task);
  return true;
}

bool Machine::execArith(const Instr &I) {
  Value A, B;
  if (!evalOperand(I.A, A) || !evalOperand(I.B, B))
    return false;
  Value Out;
  bool IsDouble = I.Ty == TypeKind::Double;
  switch (I.Op) {
  case Opcode::Add:
    Out = IsDouble ? Value::ofDouble(A.D + B.D) : Value::ofInt(A.I + B.I);
    break;
  case Opcode::Sub:
    Out = IsDouble ? Value::ofDouble(A.D - B.D) : Value::ofInt(A.I - B.I);
    break;
  case Opcode::Mul:
    Out = IsDouble ? Value::ofDouble(A.D * B.D) : Value::ofInt(A.I * B.I);
    break;
  case Opcode::Div:
    if (IsDouble) {
      Out = Value::ofDouble(B.D == 0.0 ? 0.0 : A.D / B.D);
    } else {
      if (B.I == 0)
        return fail("integer division by zero");
      Out = Value::ofInt(A.I / B.I);
    }
    break;
  case Opcode::Rem:
    if (B.I == 0)
      return fail("integer remainder by zero");
    Out = Value::ofInt(A.I % B.I);
    break;
  case Opcode::And: Out = Value::ofInt(A.I & B.I); break;
  case Opcode::Or:  Out = Value::ofInt(A.I | B.I); break;
  case Opcode::Xor: Out = Value::ofInt(A.I ^ B.I); break;
  case Opcode::Shl: Out = Value::ofInt(A.I << (B.I & 63)); break;
  case Opcode::Shr: Out = Value::ofInt(A.I >> (B.I & 63)); break;
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::CmpEq:
  case Opcode::CmpNe: {
    int Cmp = 0;
    if (I.Ty == TypeKind::Double)
      Cmp = A.D < B.D ? -1 : (A.D > B.D ? 1 : 0);
    else if (isPointerType(I.Ty))
      Cmp = A.Region != B.Region ? (A.Region < B.Region ? -1 : 1)
                                 : (A.Off < B.Off ? -1 : (A.Off > B.Off));
    else if (I.Ty == TypeKind::Func)
      Cmp = A.Func != B.Func;
    else
      Cmp = A.I < B.I ? -1 : (A.I > B.I ? 1 : 0);
    bool R = false;
    switch (I.Op) {
    case Opcode::CmpLt: R = Cmp < 0; break;
    case Opcode::CmpLe: R = Cmp <= 0; break;
    case Opcode::CmpGt: R = Cmp > 0; break;
    case Opcode::CmpGe: R = Cmp >= 0; break;
    case Opcode::CmpEq: R = Cmp == 0; break;
    case Opcode::CmpNe: R = Cmp != 0; break;
    default: break;
    }
    Out = Value::ofInt(R);
    break;
  }
  default:
    return fail("bad arithmetic opcode");
  }
  return writeLocal(I.Dst, Out);
}

bool Machine::execInstr(const Instr &I) {
  switch (I.Op) {
  case Opcode::Copy: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    if (I.Dst != KNone)
      return writeLocal(I.Dst, A);
    return true;
  }
  case Opcode::IntToFloat: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    return writeLocal(I.Dst, Value::ofDouble(static_cast<double>(A.I)));
  }
  case Opcode::FloatToInt: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    return writeLocal(I.Dst, Value::ofInt(static_cast<int64_t>(A.D)));
  }
  case Opcode::Neg: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    return writeLocal(I.Dst, I.Ty == TypeKind::Double
                                 ? Value::ofDouble(-A.D)
                                 : Value::ofInt(-A.I));
  }
  case Opcode::Not: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    return writeLocal(I.Dst, Value::ofInt(A.I == 0));
  }
  case Opcode::BitNot: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    return writeLocal(I.Dst, Value::ofInt(~A.I));
  }
  case Opcode::AddrOfVar: {
    unsigned Region = I.A.K == Operand::Kind::Global
                          ? GlobalRegion[I.A.Index]
                          : frame().LocalRegions[I.A.Index];
    return writeLocal(I.Dst, Value::ofPointer(I.Ty, Region, 0));
  }
  case Opcode::PtrAdd: {
    Value A, B;
    if (!evalOperand(I.A, A) || !evalOperand(I.B, B))
      return false;
    return writeLocal(I.Dst,
                      Value::ofPointer(I.Ty, A.Region, A.Off + B.I));
  }
  case Opcode::Load: {
    Value A, B, Out;
    if (!evalOperand(I.A, A) || !evalOperand(I.B, B))
      return false;
    if (!loadMem(A.Region, A.Off + B.I, Out))
      return false;
    return writeLocal(I.Dst, Out);
  }
  case Opcode::Store: {
    Value A, B, C;
    if (!evalOperand(I.A, A) || !evalOperand(I.B, B) ||
        !evalOperand(I.C, C))
      return false;
    return storeMem(A.Region, A.Off + B.I, C);
  }
  case Opcode::Malloc: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    if (A.I < 0 || A.I > (int64_t(1) << 28))
      return fail("malloc size out of range");
    unsigned LocId = CP.Memory->allocLoc(I.AllocSite);
    unsigned Region = newRegion(LocId, static_cast<size_t>(A.I),
                                CP.Memory->loc(LocId).ElemType);
    // Registration overhead when the static analysis decides the data is
    // accessed by both hosts (paper section 2.3).
    auto It = CP.Problem.AccessNodes.find(LocId);
    if (Choice != KNone && !Degraded && !LocalFallback &&
        It != CP.Problem.AccessNodes.end()) {
      bool Ns = CP.Partition.nodeValue(Choice, It->second.first);
      bool Nc = !CP.Partition.nodeValue(Choice, It->second.second);
      if (Ns && Nc) {
        // Registration strikes mid-segment, so the timeline splits the
        // segment around the message.
        recEndSegment();
        if (!recMessage(MessageRecord::Kind::Registration, true, CurrentTask,
                        CurrentTask, LocId, 0,
                        [&] { return Sim.tryRegistration(); }))
          return linkLost("registration");
        recBeginSegment();
      }
    }
    return writeLocal(I.Dst, Value::ofPointer(I.Ty, Region, 0));
  }
  case Opcode::IoRead: {
    if (OnServer)
      return fail("I/O executed on the server (analysis bug)");
    return writeLocal(I.Dst, Value::ofInt(nextInput()));
  }
  case Opcode::IoWrite: {
    if (OnServer)
      return fail("I/O executed on the server (analysis bug)");
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    Result.Outputs.push_back(A.K == TypeKind::Double
                                 ? A.D
                                 : static_cast<double>(A.I));
    return true;
  }
  case Opcode::IoReadBuf:
  case Opcode::IoWriteBuf: {
    if (OnServer)
      return fail("I/O executed on the server (analysis bug)");
    Value A, B;
    if (!evalOperand(I.A, A) || !evalOperand(I.B, B))
      return false;
    bool IsRead = I.Op == Opcode::IoReadBuf;
    for (int64_t K = 0; K != B.I; ++K) {
      if (IsRead) {
        int64_t In = nextInput();
        Value V;
        if (!loadMem(A.Region, A.Off + K, V))
          return false;
        Value New = V.K == TypeKind::Double
                        ? Value::ofDouble(static_cast<double>(In))
                        : Value::ofInt(In);
        if (!storeMem(A.Region, A.Off + K, New))
          return false;
      } else {
        Value V;
        if (!loadMem(A.Region, A.Off + K, V))
          return false;
        Result.Outputs.push_back(V.K == TypeKind::Double
                                     ? V.D
                                     : static_cast<double>(V.I));
      }
    }
    return true;
  }
  case Opcode::Call: {
    std::vector<Value> Args(I.Args.size());
    for (size_t A = 0; A != I.Args.size(); ++A)
      if (!evalOperand(I.Args[A], Args[A]))
        return false;
    if (!pushFrame(I.Callee, CurFunc, I.Succ0, I.Dst))
      return false;
    // Parameter values are written on the caller's host; if the callee
    // runs elsewhere, the validity transfers on the call edge move them.
    for (size_t A = 0; A != Args.size(); ++A)
      if (!storeMem(frame().LocalRegions[A], 0, Args[A]))
        return false;
    return enterBlock(I.Callee, 0);
  }
  case Opcode::CallInd: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    if (A.Func == KNone)
      return fail("indirect call through null func value");
    if (!pushFrame(A.Func, CurFunc, I.Succ0, KNone))
      return false;
    return enterBlock(A.Func, 0);
  }
  case Opcode::Ret: {
    Value RetVal;
    bool HasValue = !I.A.isNone();
    if (HasValue) {
      if (!evalOperand(I.A, RetVal))
        return false;
      if (!storeMem(RetRegion[CurFunc], 0, RetVal))
        return false;
    }
    Frame Done = std::move(Stack.back());
    for (unsigned Region : Done.LocalRegions)
      killRegion(Region);
    Stack.pop_back();
    if (Stack.empty()) {
      // main returned: hand control to the virtual exit task.
      if (!crossTask(CP.Graph.ExitTask))
        return false;
      Finished = true;
      return true;
    }
    unsigned Callee = Done.FuncIdx;
    if (!enterBlock(Done.RetFunc, Done.RetBlock))
      return false;
    if (Done.RetDstVar != KNone) {
      // The continuation task receives the return value (after any
      // transfer on the return edge).
      Value Out;
      if (!loadMem(RetRegion[Callee], 0, Out))
        return false;
      return writeLocal(Done.RetDstVar, Out);
    }
    return true;
  }
  case Opcode::Br: {
    Value A;
    if (!evalOperand(I.A, A))
      return false;
    return enterBlock(CurFunc, A.I != 0 ? I.Succ0 : I.Succ1);
  }
  case Opcode::Jmp:
    return enterBlock(CurFunc, I.Succ0);
  default:
    return execArith(I);
  }
}

ExecResult Machine::run() {
  obs::ScopedSpan Span("interp.run", "interp");
  if (Rec)
    Rec->clear();
  // Placement choice.
  if (Opts.Mode == ExecOptions::Placement::Forced) {
    Choice = Opts.ForcedChoice;
  } else if (Opts.Mode == ExecOptions::Placement::Dispatch) {
    FullPoint = CP.parameterPoint(Opts.ParamValues);
    Choice = CP.Partition.pickChoice(FullPoint);
  }
  if (ClosedLoop && FullPoint.empty())
    FullPoint = CP.parameterPoint(Opts.ParamValues);
  Result.ChoiceUsed = Choice;
  if (Ev)
    event(obs::LogLevel::Info, "run-start", Rational(0))
        .field("choice",
               Choice == KNone ? std::string("local") : std::to_string(Choice))
        .field("mode", Opts.Mode == ExecOptions::Placement::AllClient
                           ? "all-client"
                           : (Opts.Mode == ExecOptions::Placement::Dispatch
                                  ? "dispatch"
                                  : "forced"))
        .field("closed_loop", ClosedLoop);

  // Globals: client copies take the initializers, server copies start
  // zeroed (they are invalid until a transfer).
  GlobalRegion.resize(CP.Module->Globals.size());
  for (unsigned G = 0; G != CP.Module->Globals.size(); ++G) {
    const GlobalVar &Var = CP.Module->Globals[G];
    size_t Elems = Var.IsArray ? static_cast<size_t>(Var.ArraySize) : 1;
    GlobalRegion[G] = newRegion(CP.Memory->globalLoc(G), Elems, Var.Type);
    MemRegion &Region = Regions[GlobalRegion[G]];
    if (!Var.Init.empty()) {
      Region.ClientValid = true;
      Region.ServerValid = false;
    }
    std::vector<Value> &Client = Region.Client;
    for (size_t K = 0; K != Var.Init.size() && K != Elems; ++K) {
      const Operand &Init = Var.Init[K];
      Client[K] = Var.Type == TypeKind::Double
                      ? Value::ofDouble(Init.K == Operand::Kind::ConstFloat
                                            ? Init.FloatVal
                                            : double(Init.IntVal))
                      : Value::ofInt(Init.IntVal);
    }
  }
  RetRegion.resize(CP.Module->Functions.size());
  for (unsigned F = 0; F != CP.Module->Functions.size(); ++F) {
    TypeKind Ty = CP.Module->Functions[F]->RetType;
    RetRegion[F] = newRegion(CP.Memory->retLoc(F), 1,
                             Ty == TypeKind::Void ? TypeKind::Int : Ty);
  }

  TaskInstrCounts.assign(CP.Graph.numTasks(), 0);
  CurrentTask = CP.Graph.EntryTask;
  OnServer = false;
  if (CP.Module->MainIndex == KNone) {
    Result.Error = "no main function";
    Result.Failure = ExecResult::FailureKind::BadInput;
    return Result;
  }
  if (!pushFrame(CP.Module->MainIndex, KNone, KNone, KNone))
    return Result;

  // Arm task-boundary checkpointing only when a fault can actually
  // strike and the policy wants recovery, or when the closed loop needs
  // boundaries to re-dispatch at; the common (fault-free, static) case
  // never pays for it. A drift schedule with Down phases can fail even
  // a nominally fault-free link. The initial checkpoint describes the
  // state "about to execute main's first instruction, locally": even a
  // failure on the very first task boundary can roll back to it.
  bool DriftCanFail = false;
  for (const DriftPhase &P : Opts.Drift.Phases)
    DriftCanFail = DriftCanFail || P.Down;
  CheckpointsOn =
      Choice != KNone &&
      ((EffPolicy == FaultPolicy::DegradeToLocal &&
        (!Opts.Link.faultFree() || DriftCanFail || CrashArmed)) ||
       ClosedLoop);
  // The recovery ledger runs only when a crash can actually destroy
  // server-held data *and* the policy will roll back instead of failing.
  LedgerOn = CrashArmed && Choice != KNone &&
             EffPolicy == FaultPolicy::DegradeToLocal && CheckpointsOn;
  if (CheckpointsOn) {
    unsigned SavedTask = CurrentTask;
    CurrentTask = CP.Graph.taskOfBlock(CP.Module->MainIndex, 0);
    CurFunc = CP.Module->MainIndex;
    CurBlock = 0;
    InstrIdx = 0;
    takeCheckpoint();
    CurrentTask = SavedTask;
  }

  recBeginSegment(); // The virtual entry task opens the timeline.
  if (!enterBlock(CP.Module->MainIndex, 0))
    rollback(); // Either restores into the loop below or leaves Failed set.

  while (!Failed && !Finished) {
    // Server lifecycle events fire strictly at the instruction/message
    // grain the simulated clock advances by; handle them at the loop
    // top, where no instruction is mid-flight.
    if (CrashArmed && Sim.serverEventPending()) {
      bool Crashed = false, Restarted = false;
      Rational CrashedAt, RestartedAt;
      Sim.takeServerEvents(Crashed, CrashedAt, Restarted, RestartedAt);
      bool CrashHandled = !Crashed || onServerCrash(CrashedAt);
      if (Restarted) {
        if (Rec) {
          RecoveryMark M;
          M.K = RecoveryMark::Kind::Restart;
          M.At = RestartedAt;
          M.AtTask = CurrentTask;
          Rec->recovery(std::move(M));
        }
        if (Ev)
          event(obs::LogLevel::Info, "server-restart", RestartedAt);
      }
      if (!CrashHandled && !rollback())
        break;
    }
    if (CheckpointsOn && LocalFallback) {
      // Probing fallback: no checkpoints (the client-only run cannot
      // fail recoverably), but each fresh task boundary may probe.
      if (CurrentTask != LastFallbackTask) {
        LastFallbackTask = CurrentTask;
        if (!maybeProbe() && !rollback())
          break;
      }
    } else if (CheckpointsOn && !Degraded &&
               CurrentTask != Ckpt.CurrentTask) {
      // Pin server-authoritative items *before* the checkpoint, and
      // re-check for a crash that crossed mid-sync: the pins commit
      // only together with the snapshot they protect.
      if (LedgerOn && !syncLedger()) {
        if (!rollback())
          break;
        continue;
      }
      if (CrashArmed && Sim.serverEventPending())
        continue;
      takeCheckpoint();
      if (LedgerOn)
        commitLedger();
      // The boundary checkpoint doubles as the re-dispatch point: the
      // drift detector runs here, where no instruction is mid-flight
      // and a failed switch can roll back to the snapshot just taken.
      if (ClosedLoop && !maybeAdapt() && !rollback())
        break;
    }
    const BasicBlock &Block = func().Blocks[CurBlock];
    if (InstrIdx >= Block.Instrs.size()) {
      fail("fell off the end of a basic block");
      break;
    }
    const Instr &I = Block.Instrs[InstrIdx++];
    // Charge the instruction's cost weight: 1 straight from lowering, or
    // the folded weight of optimized-away neighbours, so simulated time
    // and instruction accounting match the unoptimized program exactly.
    Executed += I.Units;
    if (Executed > Opts.MaxInstructions) {
      fail("instruction budget exceeded",
           ExecResult::FailureKind::InstructionLimit);
      break;
    }
    Sim.execInstructions(OnServer, I.Units);
    TaskInstrCounts[CurrentTask] += I.Units;
    SegInstrs += I.Units;
    if (!execInstr(I) && !rollback())
      break;
  }
  recEndSegment();
  Sim.flushInstrs();

  Result.OK = !Failed;
  Result.Time = Sim.elapsed();
  Result.EnergyJoules = Sim.energyJoules(Energy);
  Result.ClientInstrs = Sim.clientInstructions();
  Result.ServerInstrs = Sim.serverInstructions();
  Result.Migrations = Sim.migrations();
  Result.TransferCount = Sim.transferCount();
  Result.BytesToServer = Sim.bytesToServer();
  Result.BytesToClient = Sim.bytesToClient();
  Result.Registrations = Sim.registrationCount();
  Result.SchedulingTime = Sim.schedulingTime();
  Result.TransferTime = Sim.transferTime();
  Result.RegistrationTime = Sim.registrationTime();
  Result.Timeouts = Sim.timeouts();
  Result.Retries = Sim.retries();
  Result.Fallbacks = Fallbacks;
  Result.FaultTime = Sim.faultTime() + Sim.jitterTime();
  // A run still sitting in the probing fallback at exit finished on the
  // client, exactly like a permanent degrade.
  Result.Degraded = Degraded || LocalFallback;
  Result.FinalChoice = (Degraded || LocalFallback) ? KNone : Choice;
  Result.Crashes = Sim.crashCount();
  Result.Restarts = Sim.restartCount();
  Result.CrashRecoveries = CrashRecoveries;
  Result.LedgerRestores = LedgerRestores;
  Result.Probes = Sim.probes();
  Result.ProbeFailures = Sim.probeFailures();
  Result.Reoffloads = Reoffloads;
  Result.LedgerSyncs = Sim.ledgerSyncs();
  Result.LedgerSyncBytes = Sim.ledgerBytes();
  Result.LedgerEvictions = LedgerEvictions;
  Result.LedgerRefetches = LedgerRefetches;
  Result.LedgerPeakBytes = LedgerPeakBytes;
  Result.ProbeTime = Sim.probeTime();
  Result.LedgerTime = Sim.ledgerTime();
  for (unsigned T = 0; T != TaskInstrCounts.size(); ++T)
    if (TaskInstrCounts[T])
      Result.TaskInstrs[T] = TaskInstrCounts[T];
  Span.arg("instructions", Executed);
  Span.arg("transfers", Result.TransferCount);
  Span.arg("migrations", Result.Migrations);
  if (Ev)
    event(obs::LogLevel::Info, "run-end", Result.Time)
        .field("ok", Result.OK)
        .field("degraded", Result.Degraded)
        .field("final_choice", Result.FinalChoice == KNone
                                   ? std::string("local")
                                   : std::to_string(Result.FinalChoice))
        .field("crashes", Result.Crashes)
        .field("redispatches",
               static_cast<uint64_t>(Result.Redispatches.size()))
        .field("reoffloads", Result.Reoffloads)
        .field("transfers", Result.TransferCount)
        .field("timeouts", Result.Timeouts)
        .field("retries", Result.Retries);
  return Result;
}

} // namespace

ExecResult paco::runProgram(const CompiledProgram &CP, const ExecOptions &Opts,
                            const EnergyModel &Energy) {
  Machine M(CP, Opts, Energy);
  return M.run();
}
