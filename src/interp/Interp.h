//===- interp/Interp.h - Partitioned-program interpreter -------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a compiled MiniC program on the simulated client/server
/// runtime. Every abstract memory location is materialized as a pair of
/// copies (client and server); task transitions follow the TCFG, apply
/// the scheduling messages of the paper's self-scheduling model, and
/// perform exactly the data transfers the chosen partitioning's validity
/// states dictate. Because reads always hit the current host's copy, an
/// unsound validity analysis would corrupt program outputs -- runs under
/// any partitioning must produce bit-identical outputs to the all-client
/// run, which the test suite checks.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_INTERP_INTERP_H
#define PACO_INTERP_INTERP_H

#include "runtime/Simulator.h"
#include "transform/Pipeline.h"

namespace paco {

/// How to run the program.
struct ExecOptions {
  enum class Placement {
    AllClient, ///< Everything on the client (the paper's baseline).
    Dispatch,  ///< Pick the optimal choice for the parameter values.
    Forced,    ///< Run a specific partitioning choice.
  };
  Placement Mode = Placement::AllClient;
  unsigned ForcedChoice = 0;
  /// One value per declared run-time parameter, in declaration order.
  std::vector<int64_t> ParamValues;
  /// Stream feeding io_read / io_read_buf; exhausted reads yield zero.
  std::vector<int64_t> Inputs;
  /// Runaway guard.
  uint64_t MaxInstructions = 2000000000ull;
};

/// Everything measured during one run.
struct ExecResult {
  bool OK = false;
  std::string Error;
  std::vector<double> Outputs;

  Rational Time;            ///< Elapsed time in cost units.
  double EnergyJoules = 0;  ///< Client energy under the EnergyModel.
  uint64_t ClientInstrs = 0;
  uint64_t ServerInstrs = 0;
  uint64_t Migrations = 0;
  uint64_t TransferCount = 0;
  uint64_t BytesToServer = 0;
  uint64_t BytesToClient = 0;
  uint64_t Registrations = 0;
  unsigned ChoiceUsed = KNone; ///< Partitioning choice, if any.

  /// Measured instruction executions per task (for prediction error).
  std::map<unsigned, uint64_t> TaskInstrs;
};

/// Runs the program.
ExecResult runProgram(const CompiledProgram &CP, const ExecOptions &Opts,
                      const EnergyModel &Energy = EnergyModel());

} // namespace paco

#endif // PACO_INTERP_INTERP_H
