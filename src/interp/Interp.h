//===- interp/Interp.h - Partitioned-program interpreter -------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a compiled MiniC program on the simulated client/server
/// runtime. Every abstract memory location is materialized as a pair of
/// copies (client and server); task transitions follow the TCFG, apply
/// the scheduling messages of the paper's self-scheduling model, and
/// perform exactly the data transfers the chosen partitioning's validity
/// states dictate. Because reads always hit the current host's copy, an
/// unsound validity analysis would corrupt program outputs -- runs under
/// any partitioning must produce bit-identical outputs to the all-client
/// run, which the test suite checks.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_INTERP_INTERP_H
#define PACO_INTERP_INTERP_H

#include "obs/EventLog.h"
#include "runtime/OnlineProfiler.h"
#include "runtime/Simulator.h"
#include "runtime/Timeline.h"
#include "transform/Pipeline.h"

namespace paco {

/// How the run may adapt its partitioning after dispatch.
enum class AdaptationPolicy {
  /// The dispatched choice is final; a link failure that exhausts its
  /// retries fails the run even under FaultPolicy::DegradeToLocal.
  Static,
  /// The PR-1 behavior: adapt only by degrading to all-client execution
  /// when a message exhausts its retries (per FaultPolicy).
  ReactOnFailure,
  /// Full closed loop: profile the live link and server online, detect
  /// when the environment has drifted across a partitioning-region
  /// boundary, and re-dispatch to the newly optimal cut at a task-
  /// boundary checkpoint. Failure degradation stays armed as the
  /// backstop.
  ClosedLoop,
};

/// Tuning knobs of the closed loop. The defaults favor stability over
/// reaction speed: transient jitter must survive several evaluations
/// and clear a cost margin before the run pays for a switch.
struct AdaptationOptions {
  AdaptationPolicy Policy = AdaptationPolicy::ReactOnFailure;
  /// EWMA smoothing weight of the online profiler, in (0, 1].
  Rational Alpha = Rational::fraction(1, 4);
  /// Profiler observations required before the detector may fire.
  uint64_t MinSamples = 8;
  /// Evaluate the detector every Nth task boundary (>= 1).
  unsigned EvalPeriod = 4;
  /// Task boundaries to dwell on a choice before switching again.
  unsigned MinDwellBoundaries = 16;
  /// Consecutive evaluations that must agree on the same challenger.
  unsigned ConfirmEvals = 2;
  /// Required relative improvement: switch only when the challenger's
  /// repriced cost is at most (1 - Margin) times the incumbent's.
  Rational SwitchMargin = Rational::fraction(1, 8);
  /// Hard cap on re-dispatches per run (thrash guard).
  unsigned MaxRedispatches = 8;

  /// Active recovery probing (ClosedLoop only). While the run sits in
  /// local fallback after a degrade or a server crash, it sends one
  /// probe message every ProbePeriodBoundaries task boundaries, priced
  /// through the CostModel like any other traffic. A delivered probe
  /// feeds the profiler and reprices local-vs-remote under the profiled
  /// model; the run re-offloads only when the best remote cut beats
  /// local by SwitchMargin. ProbeBudget bounds the total spend: once
  /// exhausted, the fallback becomes a permanent degrade. Zero disables
  /// probing (every fallback is immediately permanent, the PR-6
  /// behavior).
  unsigned ProbePeriodBoundaries = 8;
  uint64_t ProbeBytes = 64;
  unsigned ProbeBudget = 16;
};

/// How to run the program.
struct ExecOptions {
  enum class Placement {
    AllClient, ///< Everything on the client (the paper's baseline).
    Dispatch,  ///< Pick the optimal choice for the parameter values.
    Forced,    ///< Run a specific partitioning choice.
  };
  Placement Mode = Placement::AllClient;
  unsigned ForcedChoice = 0;
  /// One value per declared run-time parameter, in declaration order.
  std::vector<int64_t> ParamValues;
  /// Stream feeding io_read / io_read_buf; exhausted reads yield zero.
  std::vector<int64_t> Inputs;
  /// Runaway guard.
  uint64_t MaxInstructions = 2000000000ull;
  /// Injected fault schedule for the client/server link. The default is
  /// a perfect link, which keeps the whole fault layer off the hot path.
  FaultSpec Link;
  /// Retry/backoff schedule for lost messages (ignored under FailFast).
  RetryPolicy Retry;
  /// Recovery policy when a message exhausts its retries.
  FaultPolicy OnLinkFailure = FaultPolicy::DegradeToLocal;
  /// Closed-loop adaptation policy and tuning (see AdaptationPolicy).
  AdaptationOptions Adapt;
  /// Piecewise environment-drift schedule the simulator applies on the
  /// simulated clock (bandwidth ramps, server load spikes, timed
  /// outages). Empty = the static environment.
  DriftSchedule Drift;
  /// Scheduled server crash/restart events on the simulated clock. A
  /// crash loses every server-resident data copy and aborts the
  /// in-flight server task; under a recovery policy the run rolls back
  /// to the last task boundary and restores the lost items from the
  /// client-held recovery ledger. Empty = the server never fails.
  CrashSchedule Crash;
  /// Byte budget of the client-held recovery ledger (pinned client
  /// copies of server-authoritative data, maintained at task boundaries
  /// while a crash schedule is armed). Items beyond the budget are
  /// evicted LRU and re-fetched -- at full transfer price -- when
  /// needed again. Pins the current checkpoint depends on are never
  /// evicted, so the budget is a soft target with a hard safety floor.
  uint64_t LedgerBudgetBytes = 1ull << 20;
  /// Optional timeline recorder (cleared at run start): receives every
  /// task-execution segment and runtime message on the simulated clock.
  /// Costs one elapsed-time evaluation per task boundary, nothing on the
  /// per-instruction path.
  RuntimeRecorder *Recorder = nullptr;
  /// Optional structured event log: receives one event per dispatch,
  /// redispatch, probe, crash, restart, fallback, re-offload and ledger
  /// eviction/refetch, stamped with the exact simulated time. Events are
  /// emitted only at those (rare) control points, never on the
  /// per-instruction path.
  obs::EventLog *Events = nullptr;
};

/// Everything measured during one run.
struct ExecResult {
  /// Structured classification of a failed run (Error carries the text).
  enum class FailureKind {
    None,             ///< The run succeeded.
    InstructionLimit, ///< The MaxInstructions runaway guard tripped.
    LinkFailure,      ///< A message exhausted its retries and the policy
                      ///< forbade degrading to local execution.
    ServerCrash,      ///< The server process died and the policy had no
                      ///< recovery path (FailFast/RetryOnly/Static).
    BadInput,         ///< Program-level fault (bad pointer, div by zero,
                      ///< missing main, analysis bug, ...).
  };

  bool OK = false;
  FailureKind Failure = FailureKind::None;
  std::string Error;
  std::vector<double> Outputs;

  Rational Time;            ///< Elapsed time in cost units.
  double EnergyJoules = 0;  ///< Client energy under the EnergyModel.
  uint64_t ClientInstrs = 0;
  uint64_t ServerInstrs = 0;
  uint64_t Migrations = 0;
  uint64_t TransferCount = 0;
  uint64_t BytesToServer = 0;
  uint64_t BytesToClient = 0;
  uint64_t Registrations = 0;
  unsigned ChoiceUsed = KNone;  ///< Initially dispatched choice, if any.
  unsigned FinalChoice = KNone; ///< Choice the run finished under (KNone
                                ///< after a switch to local or a degrade).

  /// Per-component time split of Time (cost audit): task-scheduling
  /// messages, data transfers, dynamic-data registrations.
  Rational SchedulingTime;
  Rational TransferTime;
  Rational RegistrationTime;

  /// Fault accounting (all zero on a fault-free link).
  uint64_t Timeouts = 0;  ///< Message attempts declared lost.
  uint64_t Retries = 0;   ///< Re-sends after a timeout.
  uint64_t Fallbacks = 0; ///< Rollbacks that degraded the run to local.
  Rational FaultTime;     ///< Time lost to timeouts, backoff and jitter.
  bool Degraded = false;  ///< The run finished on the client after a
                          ///< link failure or server crash.

  /// Server-failure recovery accounting (all zero without a crash
  /// schedule and with probing off).
  uint64_t Crashes = 0;         ///< Scheduled crashes the run crossed.
  uint64_t Restarts = 0;        ///< Scheduled restarts the run crossed.
  uint64_t CrashRecoveries = 0; ///< Rollbacks forced by a crash.
  uint64_t LedgerRestores = 0;  ///< Data items restored from the ledger.
  uint64_t Probes = 0;          ///< Recovery probes sent.
  uint64_t ProbeFailures = 0;   ///< Probes lost (down/dropped/crashed).
  uint64_t Reoffloads = 0;      ///< Probe-driven returns to a remote cut.
  uint64_t LedgerSyncs = 0;     ///< Charged ledger pin transfers.
  uint64_t LedgerSyncBytes = 0; ///< Bytes those transfers moved.
  uint64_t LedgerEvictions = 0; ///< Pins evicted under the byte budget.
  uint64_t LedgerRefetches = 0; ///< Evicted pins fetched again later.
  uint64_t LedgerPeakBytes = 0; ///< Ledger high-water mark.
  Rational ProbeTime;           ///< Time spent probing.
  Rational LedgerTime;          ///< Time spent syncing the ledger.

  /// Measured instruction executions per task (for prediction error).
  std::map<unsigned, uint64_t> TaskInstrs;

  /// One closed-loop re-dispatch the run performed (same payload the
  /// timeline records as an AdaptMark).
  struct RedispatchEvent {
    Rational At;             ///< Simulated time of the switch.
    unsigned AtTask = KNone; ///< The task boundary it fired at.
    unsigned FromChoice = KNone;
    unsigned ToChoice = KNone; ///< KNone = switched to all-client.
    Rational PredictedStay;    ///< Profiled cost of keeping FromChoice.
    Rational PredictedSwitch;  ///< Profiled cost of ToChoice.
  };
  std::vector<RedispatchEvent> Redispatches;
};

/// Runs the program.
ExecResult runProgram(const CompiledProgram &CP, const ExecOptions &Opts,
                      const EnergyModel &Energy = EnergyModel());

} // namespace paco

#endif // PACO_INTERP_INTERP_H
