//===- lang/Sema.cpp - MiniC semantic analysis ----------------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "obs/Trace.h"

#include <map>
#include <vector>

using namespace paco;

const char *paco::typeName(TypeKind T) {
  switch (T) {
  case TypeKind::Void:      return "void";
  case TypeKind::Int:       return "int";
  case TypeKind::Double:    return "double";
  case TypeKind::IntPtr:    return "int*";
  case TypeKind::DoublePtr: return "double*";
  case TypeKind::Func:      return "func";
  }
  return "?";
}

namespace {

class Sema {
public:
  Sema(Program &Prog, DiagEngine &Diags) : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void declareGlobals();
  void checkFunction(FuncDecl &Func);
  void checkStmt(Stmt &S);
  void checkAnnotation(Expr &E);
  /// Type checks an expression; AllowArray permits a raw array reference
  /// (for decay and AddrOf contexts).
  TypeKind checkExpr(Expr &E, bool AllowArray = false);
  TypeKind checkCall(CallExpr &Call);
  bool checkAssignable(Expr &Target);
  bool convertible(TypeKind From, TypeKind To) const;

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(VarDecl *Var);
  VarDecl *lookupVar(const std::string &Name) const;

  Program &Prog;
  DiagEngine &Diags;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  std::map<std::string, int> ParamIndex;
  FuncDecl *CurrentFunc = nullptr;
  unsigned LoopDepth = 0;
  bool InAnnotation = false;
};

bool Sema::run() {
  declareGlobals();
  for (const auto &Func : Prog.Functions)
    checkFunction(*Func);
  FuncDecl *Main = Prog.findFunction("main");
  if (!Main) {
    Diags.error(SourceLoc(), "program has no 'main' function");
  } else if (Main->ReturnType != TypeKind::Void || !Main->Params.empty()) {
    Diags.error(Main->Loc, "'main' must have signature 'void main()'");
  }
  return !Diags.hasErrors();
}

void Sema::declareGlobals() {
  pushScope();
  for (unsigned I = 0; I != Prog.RuntimeParams.size(); ++I) {
    const RuntimeParamDecl &P = Prog.RuntimeParams[I];
    if (ParamIndex.count(P.Name))
      Diags.error(P.Loc, "duplicate parameter '" + P.Name + "'");
    ParamIndex[P.Name] = static_cast<int>(I);
  }
  for (const auto &G : Prog.Globals) {
    if (ParamIndex.count(G->Name))
      Diags.error(G->Loc, "global '" + G->Name + "' shadows a parameter");
    declare(G.get());
    // Validate constant initializers.
    if (!G->Init.empty() && G->IsArray &&
        static_cast<int64_t>(G->Init.size()) > G->ArraySize)
      Diags.error(G->Loc, "too many initializers for array '" + G->Name + "'");
    if (!G->Init.empty() && !G->IsArray && G->Init.size() != 1)
      Diags.error(G->Loc, "scalar initializer list for '" + G->Name + "'");
    for (const ExprPtr &Init : G->Init) {
      const Expr *E = Init.get();
      bool Ok = false;
      if (E->getKind() == Expr::Kind::IntLit ||
          E->getKind() == Expr::Kind::FloatLit) {
        Ok = true;
      } else if (E->getKind() == Expr::Kind::Unary) {
        const auto &U = static_cast<const UnaryExpr &>(*E);
        Ok = U.Op == UnaryOp::Neg &&
             (U.Operand->getKind() == Expr::Kind::IntLit ||
              U.Operand->getKind() == Expr::Kind::FloatLit);
      }
      if (!Ok)
        Diags.error(E->loc(), "global initializers must be literals");
    }
  }
}

void Sema::declare(VarDecl *Var) {
  assert(!Scopes.empty() && "no active scope");
  auto [It, Inserted] = Scopes.back().emplace(Var->Name, Var);
  (void)It;
  if (!Inserted)
    Diags.error(Var->Loc, "redefinition of '" + Var->Name + "'");
}

VarDecl *Sema::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Sema::checkFunction(FuncDecl &Func) {
  CurrentFunc = &Func;
  pushScope();
  for (const auto &Param : Func.Params)
    declare(Param.get());
  checkStmt(*Func.Body);
  popScope();
  CurrentFunc = nullptr;
}

void Sema::checkAnnotation(Expr &E) {
  InAnnotation = true;
  TypeKind Ty = checkExpr(E);
  InAnnotation = false;
  if (Ty != TypeKind::Int)
    Diags.error(E.loc(), "annotation expression must have type int");
}

void Sema::checkStmt(Stmt &S) {
  if (S.TripAnnot)
    checkAnnotation(*S.TripAnnot);
  if (S.CondAnnot)
    checkAnnotation(*S.CondAnnot);
  switch (S.getKind()) {
  case Stmt::Kind::Block: {
    auto &Block = static_cast<BlockStmt &>(S);
    pushScope();
    for (const StmtPtr &Child : Block.Body)
      checkStmt(*Child);
    popScope();
    return;
  }
  case Stmt::Kind::DeclStmt: {
    auto &Decl = static_cast<DeclStmt &>(S);
    if (Decl.SizeAnnot)
      checkAnnotation(*Decl.SizeAnnot);
    if (Decl.InitExpr) {
      TypeKind ValueTy = checkExpr(*Decl.InitExpr);
      // malloc takes its pointer type from the declaration.
      if (Decl.InitExpr->getKind() == Expr::Kind::Call) {
        auto &Call = static_cast<CallExpr &>(*Decl.InitExpr);
        if (Call.BuiltinKind == CallExpr::Builtin::Malloc &&
            isPointerType(Decl.Var->Type)) {
          Call.Type = Decl.Var->Type;
          ValueTy = Call.Type;
        }
      }
      if (!convertible(ValueTy, Decl.Var->Type))
        Diags.error(Decl.loc(), std::string("cannot initialize '") +
                                    typeName(Decl.Var->Type) + "' from '" +
                                    typeName(ValueTy) + "'");
    }
    declare(Decl.Var.get());
    return;
  }
  case Stmt::Kind::ExprStmt:
    checkExpr(*static_cast<ExprStmt &>(S).E);
    return;
  case Stmt::Kind::If: {
    auto &If = static_cast<IfStmt &>(S);
    if (checkExpr(*If.Cond) != TypeKind::Int)
      Diags.error(If.Cond->loc(), "if condition must have type int");
    checkStmt(*If.Then);
    if (If.Else)
      checkStmt(*If.Else);
    return;
  }
  case Stmt::Kind::While: {
    auto &While = static_cast<WhileStmt &>(S);
    if (checkExpr(*While.Cond) != TypeKind::Int)
      Diags.error(While.Cond->loc(), "while condition must have type int");
    ++LoopDepth;
    checkStmt(*While.Body);
    --LoopDepth;
    return;
  }
  case Stmt::Kind::For: {
    auto &For = static_cast<ForStmt &>(S);
    pushScope();
    if (For.Init)
      checkStmt(*For.Init);
    if (For.Cond && checkExpr(*For.Cond) != TypeKind::Int)
      Diags.error(For.Cond->loc(), "for condition must have type int");
    if (For.Step)
      checkExpr(*For.Step);
    ++LoopDepth;
    checkStmt(*For.Body);
    --LoopDepth;
    popScope();
    return;
  }
  case Stmt::Kind::Return: {
    auto &Ret = static_cast<ReturnStmt &>(S);
    assert(CurrentFunc && "return outside function");
    if (!Ret.Value) {
      if (CurrentFunc->ReturnType != TypeKind::Void)
        Diags.error(Ret.loc(), "non-void function must return a value");
      return;
    }
    TypeKind Ty = checkExpr(*Ret.Value);
    if (CurrentFunc->ReturnType == TypeKind::Void)
      Diags.error(Ret.loc(), "void function cannot return a value");
    else if (!convertible(Ty, CurrentFunc->ReturnType))
      Diags.error(Ret.loc(), std::string("cannot return '") + typeName(Ty) +
                                 "' from function returning '" +
                                 typeName(CurrentFunc->ReturnType) + "'");
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      Diags.error(S.loc(), "break/continue outside of a loop");
    return;
  }
}

bool Sema::convertible(TypeKind From, TypeKind To) const {
  if (From == To)
    return true;
  // Numeric conversions both ways.
  if ((From == TypeKind::Int && To == TypeKind::Double) ||
      (From == TypeKind::Double && To == TypeKind::Int))
    return true;
  return false;
}

bool Sema::checkAssignable(Expr &Target) {
  switch (Target.getKind()) {
  case Expr::Kind::VarRef: {
    auto &Ref = static_cast<VarRefExpr &>(Target);
    if (Ref.ParamIndex >= 0) {
      Diags.error(Target.loc(),
                  "run-time parameter '" + Ref.Name + "' is read-only");
      return false;
    }
    if (Ref.Var && Ref.Var->IsArray) {
      Diags.error(Target.loc(), "cannot assign to an array");
      return false;
    }
    if (Ref.Function) {
      Diags.error(Target.loc(), "cannot assign to a function");
      return false;
    }
    return true;
  }
  case Expr::Kind::Index:
  case Expr::Kind::Deref:
    return true;
  default:
    Diags.error(Target.loc(), "expression is not assignable");
    return false;
  }
}

TypeKind Sema::checkExpr(Expr &E, bool AllowArray) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return E.Type = TypeKind::Int;
  case Expr::Kind::FloatLit:
    return E.Type = TypeKind::Double;
  case Expr::Kind::VarRef: {
    auto &Ref = static_cast<VarRefExpr &>(E);
    auto ParamIt = ParamIndex.find(Ref.Name);
    if (ParamIt != ParamIndex.end()) {
      Ref.ParamIndex = ParamIt->second;
      return E.Type = TypeKind::Int;
    }
    if (InAnnotation) {
      Diags.error(E.loc(), "annotation may only reference run-time "
                           "parameters, found '" +
                               Ref.Name + "'");
      return E.Type = TypeKind::Int;
    }
    if (VarDecl *Var = lookupVar(Ref.Name)) {
      Ref.Var = Var;
      if (Var->IsArray) {
        if (AllowArray)
          return E.Type = Var->Type; // element type; caller handles decay
        // Arrays decay to a pointer to their first element.
        return E.Type = pointerTo(Var->Type);
      }
      return E.Type = Var->Type;
    }
    if (FuncDecl *Func = Prog.findFunction(Ref.Name)) {
      Ref.Function = Func;
      if (Func->ReturnType != TypeKind::Void || !Func->Params.empty())
        Diags.error(E.loc(), "only 'void(void)' functions can be used as "
                             "func values");
      return E.Type = TypeKind::Func;
    }
    Diags.error(E.loc(), "use of undeclared identifier '" + Ref.Name + "'");
    return E.Type = TypeKind::Int;
  }
  case Expr::Kind::Unary: {
    auto &U = static_cast<UnaryExpr &>(E);
    TypeKind Ty = checkExpr(*U.Operand);
    switch (U.Op) {
    case UnaryOp::Neg:
      if (Ty != TypeKind::Int && Ty != TypeKind::Double)
        Diags.error(E.loc(), "operand of unary '-' must be numeric");
      return E.Type = Ty;
    case UnaryOp::Not:
      if (Ty != TypeKind::Int)
        Diags.error(E.loc(), "operand of '!' must have type int");
      return E.Type = TypeKind::Int;
    case UnaryOp::BitNot:
      if (Ty != TypeKind::Int)
        Diags.error(E.loc(), "operand of '~' must have type int");
      return E.Type = TypeKind::Int;
    }
    return E.Type = Ty;
  }
  case Expr::Kind::Binary: {
    auto &B = static_cast<BinaryExpr &>(E);
    TypeKind L = checkExpr(*B.LHS);
    TypeKind R = checkExpr(*B.RHS);
    switch (B.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      if (isPointerType(L) && R == TypeKind::Int)
        return E.Type = L;
      if (B.Op == BinaryOp::Add && L == TypeKind::Int && isPointerType(R))
        return E.Type = R;
      [[fallthrough]];
    case BinaryOp::Mul:
    case BinaryOp::Div: {
      bool Numeric = (L == TypeKind::Int || L == TypeKind::Double) &&
                     (R == TypeKind::Int || R == TypeKind::Double);
      if (!Numeric) {
        Diags.error(E.loc(), "invalid operand types for arithmetic");
        return E.Type = TypeKind::Int;
      }
      return E.Type = (L == TypeKind::Double || R == TypeKind::Double)
                          ? TypeKind::Double
                          : TypeKind::Int;
    }
    case BinaryOp::Rem:
    case BinaryOp::And:
    case BinaryOp::Or:
    case BinaryOp::Xor:
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (L != TypeKind::Int || R != TypeKind::Int)
        Diags.error(E.loc(), "bitwise operands must have type int");
      return E.Type = TypeKind::Int;
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: {
      bool Numeric = (L == TypeKind::Int || L == TypeKind::Double) &&
                     (R == TypeKind::Int || R == TypeKind::Double);
      if (!Numeric && !(isPointerType(L) && L == R))
        Diags.error(E.loc(), "invalid operand types for comparison");
      return E.Type = TypeKind::Int;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Numeric = (L == TypeKind::Int || L == TypeKind::Double) &&
                     (R == TypeKind::Int || R == TypeKind::Double);
      bool SamePtr = isPointerType(L) && L == R;
      bool FuncCmp = L == TypeKind::Func && R == TypeKind::Func;
      if (!Numeric && !SamePtr && !FuncCmp)
        Diags.error(E.loc(), "invalid operand types for equality");
      return E.Type = TypeKind::Int;
    }
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      if (L != TypeKind::Int || R != TypeKind::Int)
        Diags.error(E.loc(), "logical operands must have type int");
      return E.Type = TypeKind::Int;
    }
    return E.Type = TypeKind::Int;
  }
  case Expr::Kind::Assign: {
    auto &A = static_cast<AssignExpr &>(E);
    TypeKind TargetTy = checkExpr(*A.Target);
    TypeKind ValueTy = checkExpr(*A.Value);
    checkAssignable(*A.Target);
    // malloc adopts the pointer type of its assignment target.
    if (A.Value->getKind() == Expr::Kind::Call) {
      auto &Call = static_cast<CallExpr &>(*A.Value);
      if (Call.BuiltinKind == CallExpr::Builtin::Malloc &&
          isPointerType(TargetTy)) {
        Call.Type = TargetTy;
        ValueTy = TargetTy;
      }
    }
    if (!convertible(ValueTy, TargetTy))
      Diags.error(E.loc(), std::string("cannot assign '") +
                               typeName(ValueTy) + "' to '" +
                               typeName(TargetTy) + "'");
    return E.Type = TargetTy;
  }
  case Expr::Kind::Call:
    return checkCall(static_cast<CallExpr &>(E));
  case Expr::Kind::Index: {
    auto &I = static_cast<IndexExpr &>(E);
    TypeKind BaseTy = checkExpr(*I.Base, /*AllowArray=*/true);
    TypeKind Element;
    if (I.Base->getKind() == Expr::Kind::VarRef &&
        static_cast<VarRefExpr &>(*I.Base).Var &&
        static_cast<VarRefExpr &>(*I.Base).Var->IsArray) {
      Element = BaseTy; // AllowArray returned the element type directly
    } else if (isPointerType(BaseTy)) {
      Element = pointeeType(BaseTy);
    } else {
      Diags.error(E.loc(), "indexed expression is not an array or pointer");
      Element = TypeKind::Int;
    }
    if (checkExpr(*I.Index) != TypeKind::Int)
      Diags.error(I.Index->loc(), "array index must have type int");
    return E.Type = Element;
  }
  case Expr::Kind::Deref: {
    auto &D = static_cast<DerefExpr &>(E);
    TypeKind Ty = checkExpr(*D.Pointer);
    if (!isPointerType(Ty)) {
      Diags.error(E.loc(), "cannot dereference a non-pointer");
      return E.Type = TypeKind::Int;
    }
    return E.Type = pointeeType(Ty);
  }
  case Expr::Kind::AddrOf: {
    auto &A = static_cast<AddrOfExpr &>(E);
    if (A.Operand->getKind() != Expr::Kind::VarRef) {
      Diags.error(E.loc(), "'&' requires a named variable");
      return E.Type = TypeKind::IntPtr;
    }
    TypeKind Ty = checkExpr(*A.Operand, /*AllowArray=*/true);
    auto &Ref = static_cast<VarRefExpr &>(*A.Operand);
    if (Ref.Function || Ref.ParamIndex >= 0) {
      Diags.error(E.loc(), "cannot take the address of this entity");
      return E.Type = TypeKind::IntPtr;
    }
    if (Ty != TypeKind::Int && Ty != TypeKind::Double) {
      Diags.error(E.loc(), "'&' operand must be int or double");
      return E.Type = TypeKind::IntPtr;
    }
    return E.Type = pointerTo(Ty);
  }
  case Expr::Kind::Ternary: {
    auto &T = static_cast<TernaryExpr &>(E);
    if (checkExpr(*T.Cond) != TypeKind::Int)
      Diags.error(T.Cond->loc(), "ternary condition must have type int");
    TypeKind Then = checkExpr(*T.Then);
    TypeKind Else = checkExpr(*T.Else);
    if (Then == Else)
      return E.Type = Then;
    bool Numeric = (Then == TypeKind::Int || Then == TypeKind::Double) &&
                   (Else == TypeKind::Int || Else == TypeKind::Double);
    if (!Numeric) {
      Diags.error(E.loc(), "ternary branches have incompatible types");
      return E.Type = Then;
    }
    return E.Type = TypeKind::Double;
  }
  }
  assert(false && "unhandled expression kind");
  return TypeKind::Void;
}

TypeKind Sema::checkCall(CallExpr &Call) {
  if (Call.Callee->getKind() != Expr::Kind::VarRef) {
    Diags.error(Call.loc(), "call target must be a name");
    return Call.Type = TypeKind::Int;
  }
  auto &Callee = static_cast<VarRefExpr &>(*Call.Callee);
  const std::string &Name = Callee.Name;

  auto checkArgCount = [&](size_t Expected) {
    if (Call.Args.size() == Expected)
      return true;
    Diags.error(Call.loc(), "'" + Name + "' expects " +
                                std::to_string(Expected) + " argument(s)");
    return false;
  };

  // Builtins.
  if (Name == "io_read") {
    Call.BuiltinKind = CallExpr::Builtin::IoRead;
    checkArgCount(0);
    return Call.Type = TypeKind::Int;
  }
  if (Name == "io_write") {
    Call.BuiltinKind = CallExpr::Builtin::IoWrite;
    if (checkArgCount(1)) {
      TypeKind Ty = checkExpr(*Call.Args[0]);
      if (Ty != TypeKind::Int && Ty != TypeKind::Double)
        Diags.error(Call.loc(), "io_write argument must be numeric");
    }
    return Call.Type = TypeKind::Void;
  }
  if (Name == "io_read_buf" || Name == "io_write_buf") {
    Call.BuiltinKind = Name == "io_read_buf" ? CallExpr::Builtin::IoReadBuf
                                             : CallExpr::Builtin::IoWriteBuf;
    if (checkArgCount(2)) {
      TypeKind Ptr = checkExpr(*Call.Args[0]);
      if (!isPointerType(Ptr))
        Diags.error(Call.Args[0]->loc(), "first argument must be a pointer");
      if (checkExpr(*Call.Args[1]) != TypeKind::Int)
        Diags.error(Call.Args[1]->loc(), "element count must have type int");
    }
    return Call.Type = TypeKind::Void;
  }
  if (Name == "malloc") {
    Call.BuiltinKind = CallExpr::Builtin::Malloc;
    if (checkArgCount(1)) {
      if (checkExpr(*Call.Args[0]) != TypeKind::Int)
        Diags.error(Call.Args[0]->loc(), "malloc size must have type int");
    }
    // Refined to the target pointer type by the assignment context.
    return Call.Type = TypeKind::IntPtr;
  }

  // Indirect call through a func variable.
  if (VarDecl *Var = lookupVar(Name)) {
    Callee.Var = Var;
    if (Var->Type != TypeKind::Func) {
      Diags.error(Call.loc(), "'" + Name + "' is not callable");
      return Call.Type = TypeKind::Int;
    }
    checkArgCount(0);
    return Call.Type = TypeKind::Void;
  }

  // Direct call.
  FuncDecl *Func = Prog.findFunction(Name);
  if (!Func) {
    Diags.error(Call.loc(), "call to undeclared function '" + Name + "'");
    return Call.Type = TypeKind::Int;
  }
  Callee.Function = Func;
  if (checkArgCount(Func->Params.size())) {
    for (size_t I = 0; I != Call.Args.size(); ++I) {
      TypeKind ArgTy = checkExpr(*Call.Args[I]);
      if (!convertible(ArgTy, Func->Params[I]->Type))
        Diags.error(Call.Args[I]->loc(),
                    std::string("cannot pass '") + typeName(ArgTy) +
                        "' as parameter of type '" +
                        typeName(Func->Params[I]->Type) + "'");
    }
  } else {
    for (const ExprPtr &Arg : Call.Args)
      checkExpr(*Arg);
  }
  return Call.Type = Func->ReturnType;
}

} // namespace

bool paco::runSema(Program &Prog, DiagEngine &Diags) {
  obs::ScopedSpan Span("lang.sema", "lang");
  Sema S(Prog, Diags);
  return S.run();
}
