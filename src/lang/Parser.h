//===- lang/Parser.h - MiniC recursive-descent parser ----------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC producing the AST in lang/AST.h.
/// Compound assignments and ++/-- are desugared into plain assignments
/// during parsing so later phases see a minimal expression language.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_PARSER_H
#define PACO_LANG_PARSER_H

#include "lang/AST.h"

#include <optional>
#include <vector>

namespace paco {

/// Parses a token stream into a Program. Returns null if any parse error
/// was reported.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<Program> parseProgram();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokKind Kind) const { return peek().is(Kind); }
  bool accept(TokKind Kind);
  bool expect(TokKind Kind, const char *Context);
  void synchronizeToStmt();

  bool parseTopLevel(Program &Prog);
  bool parseRuntimeParam(Program &Prog);
  std::optional<TypeKind> parseType(bool AllowVoid);
  std::unique_ptr<FuncDecl> parseFunctionRest(TypeKind RetTy,
                                              std::string Name, SourceLoc Loc);
  std::unique_ptr<VarDecl> parseGlobalRest(TypeKind Ty, std::string Name,
                                           SourceLoc Loc);

  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseDeclStmt();
  StmtPtr parseSimpleStmtForInit();

  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseTernary();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagEngine &Diags;
  size_t Pos = 0;
};

/// Convenience: lex + parse a source buffer.
std::unique_ptr<Program> parseMiniC(const std::string &Source,
                                    DiagEngine &Diags);

} // namespace paco

#endif // PACO_LANG_PARSER_H
