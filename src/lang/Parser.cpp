//===- lang/Parser.cpp - MiniC recursive-descent parser -------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Inliner.h"
#include "lang/Lexer.h"
#include "obs/Trace.h"

using namespace paco;

std::unique_ptr<Program> paco::parseMiniC(const std::string &Source,
                                          DiagEngine &Diags) {
  obs::ScopedSpan Span("lang.parse", "lang");
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  return P.parseProgram();
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &Tok = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::accept(TokKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokKindName(Kind) +
                              " " + Context + ", found " +
                              tokKindName(peek().Kind));
  return false;
}

void Parser::synchronizeToStmt() {
  while (!check(TokKind::Eof)) {
    if (accept(TokKind::Semicolon))
      return;
    if (check(TokKind::RBrace))
      return;
    advance();
  }
}

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokKind::Eof)) {
    if (!parseTopLevel(*Prog)) {
      synchronizeToStmt();
      // A stray '}' cannot start a top-level declaration; consume it so
      // recovery always makes progress.
      accept(TokKind::RBrace);
    }
  }
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}

bool Parser::parseTopLevel(Program &Prog) {
  if (check(TokKind::KwParam))
    return parseRuntimeParam(Prog);
  SourceLoc Loc = peek().Loc;
  std::optional<TypeKind> Ty = parseType(/*AllowVoid=*/true);
  if (!Ty)
    return false;
  if (!check(TokKind::Identifier)) {
    Diags.error(peek().Loc, "expected identifier after type");
    return false;
  }
  std::string Name = advance().Text;
  if (check(TokKind::LParen)) {
    auto Func = parseFunctionRest(*Ty, std::move(Name), Loc);
    if (!Func)
      return false;
    Prog.Functions.push_back(std::move(Func));
    return true;
  }
  if (*Ty == TypeKind::Void) {
    Diags.error(Loc, "global variable cannot have type 'void'");
    return false;
  }
  auto Var = parseGlobalRest(*Ty, std::move(Name), Loc);
  if (!Var)
    return false;
  Prog.Globals.push_back(std::move(Var));
  return true;
}

bool Parser::parseRuntimeParam(Program &Prog) {
  SourceLoc Loc = peek().Loc;
  advance(); // 'param'
  if (!expect(TokKind::KwInt, "after 'param'"))
    return false;
  if (!check(TokKind::Identifier)) {
    Diags.error(peek().Loc, "expected parameter name");
    return false;
  }
  RuntimeParamDecl Decl;
  Decl.Loc = Loc;
  Decl.Name = advance().Text;
  if (!expect(TokKind::KwIn, "after parameter name") ||
      !expect(TokKind::LBracket, "before parameter range"))
    return false;
  bool Neg = accept(TokKind::Minus);
  if (!check(TokKind::IntLiteral)) {
    Diags.error(peek().Loc, "expected integer lower bound");
    return false;
  }
  Decl.Lower = advance().IntValue * (Neg ? -1 : 1);
  if (!expect(TokKind::Comma, "between parameter bounds"))
    return false;
  Neg = accept(TokKind::Minus);
  if (!check(TokKind::IntLiteral)) {
    Diags.error(peek().Loc, "expected integer upper bound");
    return false;
  }
  Decl.Upper = advance().IntValue * (Neg ? -1 : 1);
  if (!expect(TokKind::RBracket, "after parameter range") ||
      !expect(TokKind::Semicolon, "after parameter declaration"))
    return false;
  if (Decl.Lower > Decl.Upper) {
    Diags.error(Loc, "parameter range is empty");
    return false;
  }
  Prog.RuntimeParams.push_back(std::move(Decl));
  return true;
}

std::optional<TypeKind> Parser::parseType(bool AllowVoid) {
  TypeKind Base;
  if (accept(TokKind::KwInt))
    Base = TypeKind::Int;
  else if (accept(TokKind::KwDouble))
    Base = TypeKind::Double;
  else if (accept(TokKind::KwFunc))
    return TypeKind::Func;
  else if (check(TokKind::KwVoid) && AllowVoid) {
    advance();
    return TypeKind::Void;
  } else {
    Diags.error(peek().Loc, std::string("expected type, found ") +
                                tokKindName(peek().Kind));
    return std::nullopt;
  }
  if (accept(TokKind::Star)) {
    if (check(TokKind::Star)) {
      Diags.error(peek().Loc, "multi-level pointers are not supported");
      return std::nullopt;
    }
    return pointerTo(Base);
  }
  return Base;
}

std::unique_ptr<FuncDecl> Parser::parseFunctionRest(TypeKind RetTy,
                                                    std::string Name,
                                                    SourceLoc Loc) {
  auto Func = std::make_unique<FuncDecl>();
  Func->Name = std::move(Name);
  Func->ReturnType = RetTy;
  Func->Loc = Loc;
  expect(TokKind::LParen, "before parameter list");
  if (!accept(TokKind::RParen)) {
    if (accept(TokKind::KwVoid)) {
      expect(TokKind::RParen, "after 'void' parameter list");
    } else {
      do {
        std::optional<TypeKind> Ty = parseType(/*AllowVoid=*/false);
        if (!Ty)
          return nullptr;
        if (!check(TokKind::Identifier)) {
          Diags.error(peek().Loc, "expected parameter name");
          return nullptr;
        }
        auto Param = std::make_unique<VarDecl>();
        Param->Loc = peek().Loc;
        Param->Name = advance().Text;
        Param->Type = *Ty;
        Func->Params.push_back(std::move(Param));
      } while (accept(TokKind::Comma));
      expect(TokKind::RParen, "after parameter list");
    }
  }
  StmtPtr Body = parseBlock();
  if (!Body)
    return nullptr;
  Func->Body.reset(static_cast<BlockStmt *>(Body.release()));
  return Func;
}

std::unique_ptr<VarDecl> Parser::parseGlobalRest(TypeKind Ty, std::string Name,
                                                 SourceLoc Loc) {
  auto Var = std::make_unique<VarDecl>();
  Var->Name = std::move(Name);
  Var->Type = Ty;
  Var->Loc = Loc;
  Var->IsGlobal = true;
  if (accept(TokKind::LBracket)) {
    if (isPointerType(Ty) || Ty == TypeKind::Func) {
      Diags.error(Loc, "arrays of pointers are not supported");
      return nullptr;
    }
    if (!check(TokKind::IntLiteral)) {
      Diags.error(peek().Loc, "global array size must be an integer literal");
      return nullptr;
    }
    Var->IsArray = true;
    Var->ArraySize = advance().IntValue;
    if (Var->ArraySize <= 0) {
      Diags.error(Loc, "array size must be positive");
      return nullptr;
    }
    expect(TokKind::RBracket, "after array size");
  }
  if (accept(TokKind::Equal)) {
    if (accept(TokKind::LBrace)) {
      do {
        ExprPtr Elem = parseTernary();
        if (!Elem)
          return nullptr;
        Var->Init.push_back(std::move(Elem));
      } while (accept(TokKind::Comma));
      expect(TokKind::RBrace, "after initializer list");
    } else {
      ExprPtr InitExpr = parseTernary();
      if (!InitExpr)
        return nullptr;
      Var->Init.push_back(std::move(InitExpr));
    }
  }
  expect(TokKind::Semicolon, "after global declaration");
  return Var;
}

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokKind::LBrace, "to open block"))
    return nullptr;
  auto Block = std::make_unique<BlockStmt>(Loc);
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    StmtPtr S = parseStmt();
    if (!S) {
      synchronizeToStmt();
      continue;
    }
    Block->Body.push_back(std::move(S));
  }
  expect(TokKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  // Annotations attach to the statement that follows.
  if (check(TokKind::AtTrip) || check(TokKind::AtCond) ||
      check(TokKind::AtSize)) {
    TokKind Kind = peek().Kind;
    SourceLoc Loc = advance().Loc;
    if (!expect(TokKind::LParen, "after annotation"))
      return nullptr;
    ExprPtr Annot = parseExpr();
    if (!Annot)
      return nullptr;
    expect(TokKind::RParen, "after annotation expression");
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    if (Kind == TokKind::AtTrip) {
      if (S->getKind() != Stmt::Kind::While &&
          S->getKind() != Stmt::Kind::For) {
        Diags.error(Loc, "@trip must annotate a loop");
        return nullptr;
      }
      S->TripAnnot = std::move(Annot);
    } else if (Kind == TokKind::AtCond) {
      if (S->getKind() != Stmt::Kind::If) {
        Diags.error(Loc, "@cond must annotate an if statement");
        return nullptr;
      }
      S->CondAnnot = std::move(Annot);
    } else {
      if (S->getKind() != Stmt::Kind::DeclStmt) {
        Diags.error(Loc, "@size must annotate a declaration with malloc");
        return nullptr;
      }
      static_cast<DeclStmt *>(S.get())->SizeAnnot = std::move(Annot);
    }
    return S;
  }

  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwReturn: {
    SourceLoc Loc = advance().Loc;
    ExprPtr Value;
    if (!check(TokKind::Semicolon)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    expect(TokKind::Semicolon, "after return");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokKind::KwBreak: {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::Semicolon, "after break");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokKind::KwContinue: {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::Semicolon, "after continue");
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokKind::KwInt:
  case TokKind::KwDouble:
  case TokKind::KwFunc:
    return parseDeclStmt();
  default: {
    SourceLoc Loc = peek().Loc;
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    expect(TokKind::Semicolon, "after expression");
    return std::make_unique<ExprStmt>(std::move(E), Loc);
  }
  }
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = advance().Loc;
  if (!expect(TokKind::LParen, "after 'if'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  expect(TokKind::RParen, "after if condition");
  StmtPtr Then = parseStmt();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (accept(TokKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = advance().Loc;
  if (!expect(TokKind::LParen, "after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  expect(TokKind::RParen, "after while condition");
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseSimpleStmtForInit() {
  if (check(TokKind::KwInt) || check(TokKind::KwDouble) ||
      check(TokKind::KwFunc))
    return parseDeclStmt();
  SourceLoc Loc = peek().Loc;
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  expect(TokKind::Semicolon, "after for-init expression");
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = advance().Loc;
  if (!expect(TokKind::LParen, "after 'for'"))
    return nullptr;
  StmtPtr Init;
  if (!accept(TokKind::Semicolon)) {
    Init = parseSimpleStmtForInit();
    if (!Init)
      return nullptr;
  }
  ExprPtr Cond;
  if (!check(TokKind::Semicolon)) {
    Cond = parseExpr();
    if (!Cond)
      return nullptr;
  }
  expect(TokKind::Semicolon, "after for condition");
  ExprPtr Step;
  if (!check(TokKind::RParen)) {
    Step = parseExpr();
    if (!Step)
      return nullptr;
  }
  expect(TokKind::RParen, "after for clauses");
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

StmtPtr Parser::parseDeclStmt() {
  SourceLoc Loc = peek().Loc;
  std::optional<TypeKind> Ty = parseType(/*AllowVoid=*/false);
  if (!Ty)
    return nullptr;
  if (!check(TokKind::Identifier)) {
    Diags.error(peek().Loc, "expected variable name");
    return nullptr;
  }
  auto Var = std::make_unique<VarDecl>();
  Var->Loc = peek().Loc;
  Var->Name = advance().Text;
  Var->Type = *Ty;
  if (accept(TokKind::LBracket)) {
    if (isPointerType(*Ty) || *Ty == TypeKind::Func) {
      Diags.error(Loc, "arrays of pointers are not supported");
      return nullptr;
    }
    if (!check(TokKind::IntLiteral)) {
      Diags.error(peek().Loc, "local array size must be an integer literal");
      return nullptr;
    }
    Var->IsArray = true;
    Var->ArraySize = advance().IntValue;
    if (Var->ArraySize <= 0) {
      Diags.error(Loc, "array size must be positive");
      return nullptr;
    }
    expect(TokKind::RBracket, "after array size");
  }
  ExprPtr InitExpr;
  if (accept(TokKind::Equal)) {
    if (Var->IsArray) {
      Diags.error(Loc, "local arrays cannot have initializers");
      return nullptr;
    }
    InitExpr = parseExpr();
    if (!InitExpr)
      return nullptr;
  }
  expect(TokKind::Semicolon, "after declaration");
  return std::make_unique<DeclStmt>(std::move(Var), std::move(InitExpr), Loc);
}

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr LHS = parseTernary();
  if (!LHS)
    return nullptr;
  SourceLoc Loc = peek().Loc;
  auto makeCompound = [&](BinaryOp Op) -> ExprPtr {
    advance();
    ExprPtr RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    ExprPtr Copy = cloneExpr(*LHS);
    auto Combined = std::make_unique<BinaryExpr>(Op, std::move(Copy),
                                                 std::move(RHS), Loc);
    return std::make_unique<AssignExpr>(std::move(LHS), std::move(Combined),
                                        Loc);
  };
  switch (peek().Kind) {
  case TokKind::Equal: {
    advance();
    ExprPtr RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    return std::make_unique<AssignExpr>(std::move(LHS), std::move(RHS), Loc);
  }
  case TokKind::PlusEqual:
    return makeCompound(BinaryOp::Add);
  case TokKind::MinusEqual:
    return makeCompound(BinaryOp::Sub);
  case TokKind::StarEqual:
    return makeCompound(BinaryOp::Mul);
  case TokKind::SlashEqual:
    return makeCompound(BinaryOp::Div);
  case TokKind::PercentEqual:
    return makeCompound(BinaryOp::Rem);
  case TokKind::AmpEqual:
    return makeCompound(BinaryOp::And);
  case TokKind::PipeEqual:
    return makeCompound(BinaryOp::Or);
  case TokKind::CaretEqual:
    return makeCompound(BinaryOp::Xor);
  case TokKind::LessLessEqual:
    return makeCompound(BinaryOp::Shl);
  case TokKind::GreaterGreaterEqual:
    return makeCompound(BinaryOp::Shr);
  default:
    return LHS;
  }
}

ExprPtr Parser::parseTernary() {
  ExprPtr Cond = parseBinary(0);
  if (!Cond)
    return nullptr;
  if (!check(TokKind::Question))
    return Cond;
  SourceLoc Loc = advance().Loc;
  ExprPtr Then = parseExpr();
  if (!Then)
    return nullptr;
  if (!expect(TokKind::Colon, "in ternary expression"))
    return nullptr;
  ExprPtr Else = parseTernary();
  if (!Else)
    return nullptr;
  return std::make_unique<TernaryExpr>(std::move(Cond), std::move(Then),
                                       std::move(Else), Loc);
}

namespace {

struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};

std::optional<BinOpInfo> binOpFor(TokKind Kind) {
  switch (Kind) {
  case TokKind::PipePipe:       return BinOpInfo{BinaryOp::LOr, 1};
  case TokKind::AmpAmp:         return BinOpInfo{BinaryOp::LAnd, 2};
  case TokKind::Pipe:           return BinOpInfo{BinaryOp::Or, 3};
  case TokKind::Caret:          return BinOpInfo{BinaryOp::Xor, 4};
  case TokKind::Amp:            return BinOpInfo{BinaryOp::And, 5};
  case TokKind::EqualEqual:     return BinOpInfo{BinaryOp::Eq, 6};
  case TokKind::BangEqual:      return BinOpInfo{BinaryOp::Ne, 6};
  case TokKind::Less:           return BinOpInfo{BinaryOp::Lt, 7};
  case TokKind::Greater:        return BinOpInfo{BinaryOp::Gt, 7};
  case TokKind::LessEqual:      return BinOpInfo{BinaryOp::Le, 7};
  case TokKind::GreaterEqual:   return BinOpInfo{BinaryOp::Ge, 7};
  case TokKind::LessLess:       return BinOpInfo{BinaryOp::Shl, 8};
  case TokKind::GreaterGreater: return BinOpInfo{BinaryOp::Shr, 8};
  case TokKind::Plus:           return BinOpInfo{BinaryOp::Add, 9};
  case TokKind::Minus:          return BinOpInfo{BinaryOp::Sub, 9};
  case TokKind::Star:           return BinOpInfo{BinaryOp::Mul, 10};
  case TokKind::Slash:          return BinOpInfo{BinaryOp::Div, 10};
  case TokKind::Percent:        return BinOpInfo{BinaryOp::Rem, 10};
  default:                      return std::nullopt;
  }
}

} // namespace

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (true) {
    std::optional<BinOpInfo> Info = binOpFor(peek().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    SourceLoc Loc = advance().Loc;
    ExprPtr RHS = parseBinary(Info->Prec + 1);
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Info->Op, std::move(LHS),
                                       std::move(RHS), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokKind::Minus)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Operand), Loc);
  }
  if (accept(TokKind::Bang)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Operand), Loc);
  }
  if (accept(TokKind::Tilde)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::BitNot, std::move(Operand),
                                       Loc);
  }
  if (accept(TokKind::Star)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<DerefExpr>(std::move(Operand), Loc);
  }
  if (accept(TokKind::Amp)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<AddrOfExpr>(std::move(Operand), Loc);
  }
  if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
    BinaryOp Op = check(TokKind::PlusPlus) ? BinaryOp::Add : BinaryOp::Sub;
    advance();
    ExprPtr Target = parseUnary();
    if (!Target)
      return nullptr;
    ExprPtr Copy = cloneExpr(*Target);
    auto One = std::make_unique<IntLitExpr>(1, Loc);
    auto Sum = std::make_unique<BinaryExpr>(Op, std::move(Copy),
                                            std::move(One), Loc);
    return std::make_unique<AssignExpr>(std::move(Target), std::move(Sum),
                                        Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    SourceLoc Loc = peek().Loc;
    if (accept(TokKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        do {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      E = std::make_unique<CallExpr>(std::move(E), std::move(Args), Loc);
      continue;
    }
    if (accept(TokKind::LBracket)) {
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      expect(TokKind::RBracket, "after index");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
      // Postfix increment desugars to an assignment; like pre-increment
      // the expression value is the *new* value, so it must only be used
      // where the value is discarded. Sema does not distinguish, which is
      // fine for the benchmark subset.
      BinaryOp Op = check(TokKind::PlusPlus) ? BinaryOp::Add : BinaryOp::Sub;
      SourceLoc OpLoc = advance().Loc;
      ExprPtr Copy = cloneExpr(*E);
      auto One = std::make_unique<IntLitExpr>(1, OpLoc);
      auto Sum = std::make_unique<BinaryExpr>(Op, std::move(Copy),
                                              std::move(One), OpLoc);
      E = std::make_unique<AssignExpr>(std::move(E), std::move(Sum), OpLoc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokKind::IntLiteral))
    return std::make_unique<IntLitExpr>(advance().IntValue, Loc);
  if (check(TokKind::FloatLiteral))
    return std::make_unique<FloatLitExpr>(advance().FloatValue, Loc);
  if (check(TokKind::Identifier))
    return std::make_unique<VarRefExpr>(advance().Text, Loc);
  if (accept(TokKind::LParen)) {
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    expect(TokKind::RParen, "after parenthesized expression");
    return E;
  }
  Diags.error(Loc, std::string("expected expression, found ") +
                       tokKindName(peek().Kind));
  return nullptr;
}


