//===- lang/PrintAST.h - MiniC source printer ------------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an AST back to MiniC source. The output re-parses to an
/// equivalent program (the test suite round-trips every benchmark through
/// print + parse and compares execution outputs), which makes the printer
/// useful for inspecting what the inliner and other AST passes produced.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_PRINTAST_H
#define PACO_LANG_PRINTAST_H

#include "lang/AST.h"

#include <string>

namespace paco {

/// Renders a whole program as MiniC source.
std::string printProgram(const Program &Prog);

/// Renders one expression (no trailing newline).
std::string printExpr(const Expr &E);

/// Renders one statement at the given indentation depth.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

} // namespace paco

#endif // PACO_LANG_PRINTAST_H
