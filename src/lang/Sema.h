//===- lang/Sema.h - MiniC semantic analysis -------------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniC: name resolution, type checking, builtin
/// recognition (io_*, malloc), run-time parameter binding, and annotation
/// validation. On success every expression carries its type and every
/// VarRef is linked to its declaration.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_SEMA_H
#define PACO_LANG_SEMA_H

#include "lang/AST.h"

#include <map>

namespace paco {

/// Runs semantic analysis over a parsed program.
///
/// MiniC rules enforced here:
///  * `main` must exist with signature `void main()`.
///  * Run-time parameters are read-only int values.
///  * Global initializers are integer/floating literals (possibly
///    negated).
///  * Conditions are int-typed; int and double convert implicitly in
///    arithmetic; pointers support +/- int and comparisons.
///  * `func` values name `void(void)` functions and support zero-argument
///    indirect calls.
///  * Annotation expressions (@trip/@cond/@size) may reference run-time
///    parameters and literals only, since they must be analyzable as
///    functions of the parameter vector.
///
/// \returns true on success (no errors reported).
bool runSema(Program &Prog, DiagEngine &Diags);

} // namespace paco

#endif // PACO_LANG_SEMA_H
