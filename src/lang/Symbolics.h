//===- lang/Symbolics.h - Symbolic count/size analysis ---------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure-driven symbolic analysis over the MiniC AST: derives loop
/// trip counts, branch frequencies, dynamic allocation sizes and function
/// entry counts as affine functions of the run-time parameters.
///
/// This implements the paper's program flow constraints (section 3.3) in
/// their structured-program form: the execution count of the program
/// entry is 1; a loop body count is the header count times the trip
/// function L(h); branch counts split the header count by the condition
/// function B(h); dynamic allocation size is r * S(h). Values that cannot
/// be expressed over the parameter vector become *dummy parameters*
/// (section 3.4): if a dummy survives into the partitioning solution the
/// tool reports that a user annotation (@trip/@cond/@size) is required.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_SYMBOLICS_H
#define PACO_LANG_SYMBOLICS_H

#include "lang/AST.h"
#include "support/LinExpr.h"

#include <map>
#include <optional>

namespace paco {

/// Why a dummy parameter was introduced (used for annotation reports).
struct DummyOrigin {
  ParamId Id;
  std::string Description; ///< e.g. "trip count of loop at 12:3"
};

/// Results of the symbolic analysis, keyed by AST nodes.
struct SymbolicInfo {
  /// Per loop (While/For): trip count of the body per header execution.
  std::map<const Stmt *, LinExpr> LoopTrip;
  /// Per if: execution frequency of the true branch in [0, 1].
  std::map<const Stmt *, LinExpr> IfFreq;
  /// Per malloc call: element count of one allocation.
  std::map<const CallExpr *, LinExpr> MallocSize;
  /// Per function: how many times it is entered.
  std::map<const FuncDecl *, LinExpr> EntryCount;
  /// Dummy parameters introduced, with their origin.
  std::vector<DummyOrigin> Dummies;

  /// \returns the description of dummy \p Id, or empty if \p Id is not a
  /// dummy from this analysis.
  std::string dummyDescription(ParamId Id) const;
};

/// Runs the analysis. Registers the program's declared run-time
/// parameters (in declaration order) and any needed dummies/monomials
/// into \p Space.
///
/// Policy for unannotated, unanalyzable counts:
///  * loop trips become dummy parameters;
///  * if-branch frequencies with roughly balanced branch workloads use
///    the constant 1/2 (the paper's observation that balanced branches do
///    not affect partitioning); unbalanced ones (a call, loop, or a large
///    statement-count difference on one side) get a dummy frequency.
SymbolicInfo analyzeSymbolics(const Program &Prog, ParamSpace &Space,
                              DiagEngine &Diags);

} // namespace paco

#endif // PACO_LANG_SYMBOLICS_H
