//===- lang/Token.h - MiniC token definitions ------------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MiniC, the small C-like input language of the
/// offloading compiler. MiniC stands in for the paper's GCC frontend: it
/// provides functions, loops, pointers, arrays, dynamic allocation,
/// function variables, I/O builtins, declared run-time parameters and
/// cost annotations -- everything the analyses consume.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_TOKEN_H
#define PACO_LANG_TOKEN_H

#include "support/Diag.h"

#include <cstdint>
#include <string>

namespace paco {

enum class TokKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwFunc,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwParam,
  KwIn,
  // Annotations.
  AtTrip, // @trip(expr)
  AtCond, // @cond(expr)
  AtSize, // @size(expr)
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Question,
  Colon,
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  LessLess,
  GreaterGreater,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  PlusPlus,
  MinusMinus,
  // End of input / error.
  Eof,
  Error,
};

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling.
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokKind K) const { return Kind == K; }
};

/// \returns a human-readable name for diagnostics ("'+'", "identifier").
const char *tokKindName(TokKind Kind);

} // namespace paco

#endif // PACO_LANG_TOKEN_H
