//===- lang/Inliner.cpp - Small-function inlining (section 5.3) -----------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/Inliner.h"

#include <map>
#include <set>

using namespace paco;

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

ExprPtr paco::cloneExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit: {
    const auto &Lit = static_cast<const IntLitExpr &>(E);
    return std::make_unique<IntLitExpr>(Lit.Value, E.loc());
  }
  case Expr::Kind::FloatLit: {
    const auto &Lit = static_cast<const FloatLitExpr &>(E);
    return std::make_unique<FloatLitExpr>(Lit.Value, E.loc());
  }
  case Expr::Kind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(E);
    return std::make_unique<VarRefExpr>(Ref.Name, E.loc());
  }
  case Expr::Kind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    return std::make_unique<UnaryExpr>(U.Op, cloneExpr(*U.Operand), E.loc());
  }
  case Expr::Kind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    return std::make_unique<BinaryExpr>(B.Op, cloneExpr(*B.LHS),
                                        cloneExpr(*B.RHS), E.loc());
  }
  case Expr::Kind::Assign: {
    const auto &A = static_cast<const AssignExpr &>(E);
    return std::make_unique<AssignExpr>(cloneExpr(*A.Target),
                                        cloneExpr(*A.Value), E.loc());
  }
  case Expr::Kind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    std::vector<ExprPtr> Args;
    Args.reserve(C.Args.size());
    for (const ExprPtr &Arg : C.Args)
      Args.push_back(cloneExpr(*Arg));
    return std::make_unique<CallExpr>(cloneExpr(*C.Callee), std::move(Args),
                                      E.loc());
  }
  case Expr::Kind::Index: {
    const auto &I = static_cast<const IndexExpr &>(E);
    return std::make_unique<IndexExpr>(cloneExpr(*I.Base),
                                       cloneExpr(*I.Index), E.loc());
  }
  case Expr::Kind::Deref: {
    const auto &D = static_cast<const DerefExpr &>(E);
    return std::make_unique<DerefExpr>(cloneExpr(*D.Pointer), E.loc());
  }
  case Expr::Kind::AddrOf: {
    const auto &A = static_cast<const AddrOfExpr &>(E);
    return std::make_unique<AddrOfExpr>(cloneExpr(*A.Operand), E.loc());
  }
  case Expr::Kind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    return std::make_unique<TernaryExpr>(cloneExpr(*T.Cond),
                                         cloneExpr(*T.Then),
                                         cloneExpr(*T.Else), E.loc());
  }
  }
  assert(false && "unhandled expression kind in clone");
  return nullptr;
}

StmtPtr paco::cloneStmt(const Stmt &S) {
  StmtPtr Result;
  switch (S.getKind()) {
  case Stmt::Kind::Block: {
    const auto &B = static_cast<const BlockStmt &>(S);
    auto Clone = std::make_unique<BlockStmt>(S.loc());
    for (const StmtPtr &Child : B.Body)
      Clone->Body.push_back(cloneStmt(*Child));
    Result = std::move(Clone);
    break;
  }
  case Stmt::Kind::DeclStmt: {
    const auto &D = static_cast<const DeclStmt &>(S);
    auto Var = std::make_unique<VarDecl>();
    Var->Name = D.Var->Name;
    Var->Type = D.Var->Type;
    Var->Loc = D.Var->Loc;
    Var->IsArray = D.Var->IsArray;
    Var->ArraySize = D.Var->ArraySize;
    auto Clone = std::make_unique<DeclStmt>(
        std::move(Var), D.InitExpr ? cloneExpr(*D.InitExpr) : nullptr,
        S.loc());
    if (D.SizeAnnot)
      Clone->SizeAnnot = cloneExpr(*D.SizeAnnot);
    Result = std::move(Clone);
    break;
  }
  case Stmt::Kind::ExprStmt: {
    const auto &E = static_cast<const ExprStmt &>(S);
    Result = std::make_unique<ExprStmt>(cloneExpr(*E.E), S.loc());
    break;
  }
  case Stmt::Kind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    Result = std::make_unique<IfStmt>(
        cloneExpr(*I.Cond), cloneStmt(*I.Then),
        I.Else ? cloneStmt(*I.Else) : nullptr, S.loc());
    break;
  }
  case Stmt::Kind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    Result = std::make_unique<WhileStmt>(cloneExpr(*W.Cond),
                                         cloneStmt(*W.Body), S.loc());
    break;
  }
  case Stmt::Kind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    Result = std::make_unique<ForStmt>(
        F.Init ? cloneStmt(*F.Init) : nullptr,
        F.Cond ? cloneExpr(*F.Cond) : nullptr,
        F.Step ? cloneExpr(*F.Step) : nullptr, cloneStmt(*F.Body), S.loc());
    break;
  }
  case Stmt::Kind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    Result = std::make_unique<ReturnStmt>(
        R.Value ? cloneExpr(*R.Value) : nullptr, S.loc());
    break;
  }
  case Stmt::Kind::Break:
    Result = std::make_unique<BreakStmt>(S.loc());
    break;
  case Stmt::Kind::Continue:
    Result = std::make_unique<ContinueStmt>(S.loc());
    break;
  }
  if (S.TripAnnot)
    Result->TripAnnot = cloneExpr(*S.TripAnnot);
  if (S.CondAnnot)
    Result->CondAnnot = cloneExpr(*S.CondAnnot);
  return Result;
}

//===----------------------------------------------------------------------===//
// The pass
//===----------------------------------------------------------------------===//

namespace {

/// Structural facts about a callee body.
struct BodyFacts {
  unsigned NodeCount = 0;
  unsigned ReturnCount = 0;
  bool TopLevelBreakOrContinue = false;
  std::set<std::string> DeclaredNames; ///< Locals declared in the body.
  std::set<std::string> UsedNames;     ///< All identifiers referenced.
  std::set<std::string> CalledNames;   ///< Direct call targets.
};

void collectExpr(const Expr *E, BodyFacts &Facts) {
  if (!E)
    return;
  ++Facts.NodeCount;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
    return;
  case Expr::Kind::VarRef:
    Facts.UsedNames.insert(static_cast<const VarRefExpr *>(E)->Name);
    return;
  case Expr::Kind::Unary:
    collectExpr(static_cast<const UnaryExpr *>(E)->Operand.get(), Facts);
    return;
  case Expr::Kind::Binary:
    collectExpr(static_cast<const BinaryExpr *>(E)->LHS.get(), Facts);
    collectExpr(static_cast<const BinaryExpr *>(E)->RHS.get(), Facts);
    return;
  case Expr::Kind::Assign:
    collectExpr(static_cast<const AssignExpr *>(E)->Target.get(), Facts);
    collectExpr(static_cast<const AssignExpr *>(E)->Value.get(), Facts);
    return;
  case Expr::Kind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    const auto *Callee = static_cast<const VarRefExpr *>(C->Callee.get());
    Facts.CalledNames.insert(Callee->Name);
    Facts.UsedNames.insert(Callee->Name);
    for (const ExprPtr &Arg : C->Args)
      collectExpr(Arg.get(), Facts);
    return;
  }
  case Expr::Kind::Index:
    collectExpr(static_cast<const IndexExpr *>(E)->Base.get(), Facts);
    collectExpr(static_cast<const IndexExpr *>(E)->Index.get(), Facts);
    return;
  case Expr::Kind::Deref:
    collectExpr(static_cast<const DerefExpr *>(E)->Pointer.get(), Facts);
    return;
  case Expr::Kind::AddrOf:
    collectExpr(static_cast<const AddrOfExpr *>(E)->Operand.get(), Facts);
    return;
  case Expr::Kind::Ternary:
    collectExpr(static_cast<const TernaryExpr *>(E)->Cond.get(), Facts);
    collectExpr(static_cast<const TernaryExpr *>(E)->Then.get(), Facts);
    collectExpr(static_cast<const TernaryExpr *>(E)->Else.get(), Facts);
    return;
  }
}

void collectStmt(const Stmt *S, BodyFacts &Facts, bool InLoop) {
  if (!S)
    return;
  ++Facts.NodeCount;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Body)
      collectStmt(Child.get(), Facts, InLoop);
    return;
  case Stmt::Kind::DeclStmt: {
    const auto *D = static_cast<const DeclStmt *>(S);
    Facts.DeclaredNames.insert(D->Var->Name);
    collectExpr(D->InitExpr.get(), Facts);
    return;
  }
  case Stmt::Kind::ExprStmt:
    collectExpr(static_cast<const ExprStmt *>(S)->E.get(), Facts);
    return;
  case Stmt::Kind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    collectExpr(I->Cond.get(), Facts);
    collectStmt(I->Then.get(), Facts, InLoop);
    collectStmt(I->Else.get(), Facts, InLoop);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    collectExpr(W->Cond.get(), Facts);
    collectStmt(W->Body.get(), Facts, /*InLoop=*/true);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = static_cast<const ForStmt *>(S);
    collectStmt(F->Init.get(), Facts, InLoop);
    collectExpr(F->Cond.get(), Facts);
    collectExpr(F->Step.get(), Facts);
    collectStmt(F->Body.get(), Facts, /*InLoop=*/true);
    return;
  }
  case Stmt::Kind::Return:
    ++Facts.ReturnCount;
    collectExpr(static_cast<const ReturnStmt *>(S)->Value.get(), Facts);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    if (!InLoop)
      Facts.TopLevelBreakOrContinue = true;
    return;
  }
}

/// Renames variable references and declarations per \p Map, in place.
void renameExpr(Expr *E, const std::map<std::string, std::string> &Map);

void renameStmt(Stmt *S, const std::map<std::string, std::string> &Map) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (StmtPtr &Child : static_cast<BlockStmt *>(S)->Body)
      renameStmt(Child.get(), Map);
    return;
  case Stmt::Kind::DeclStmt: {
    auto *D = static_cast<DeclStmt *>(S);
    auto It = Map.find(D->Var->Name);
    if (It != Map.end())
      D->Var->Name = It->second;
    renameExpr(D->InitExpr.get(), Map);
    return;
  }
  case Stmt::Kind::ExprStmt:
    renameExpr(static_cast<ExprStmt *>(S)->E.get(), Map);
    return;
  case Stmt::Kind::If: {
    auto *I = static_cast<IfStmt *>(S);
    renameExpr(I->Cond.get(), Map);
    renameStmt(I->Then.get(), Map);
    renameStmt(I->Else.get(), Map);
    return;
  }
  case Stmt::Kind::While: {
    auto *W = static_cast<WhileStmt *>(S);
    renameExpr(W->Cond.get(), Map);
    renameStmt(W->Body.get(), Map);
    return;
  }
  case Stmt::Kind::For: {
    auto *F = static_cast<ForStmt *>(S);
    renameStmt(F->Init.get(), Map);
    renameExpr(F->Cond.get(), Map);
    renameExpr(F->Step.get(), Map);
    renameStmt(F->Body.get(), Map);
    return;
  }
  case Stmt::Kind::Return:
    renameExpr(static_cast<ReturnStmt *>(S)->Value.get(), Map);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void renameExpr(Expr *E, const std::map<std::string, std::string> &Map) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
    return;
  case Expr::Kind::VarRef: {
    auto *Ref = static_cast<VarRefExpr *>(E);
    auto It = Map.find(Ref->Name);
    if (It != Map.end())
      Ref->Name = It->second;
    return;
  }
  case Expr::Kind::Unary:
    renameExpr(static_cast<UnaryExpr *>(E)->Operand.get(), Map);
    return;
  case Expr::Kind::Binary:
    renameExpr(static_cast<BinaryExpr *>(E)->LHS.get(), Map);
    renameExpr(static_cast<BinaryExpr *>(E)->RHS.get(), Map);
    return;
  case Expr::Kind::Assign:
    renameExpr(static_cast<AssignExpr *>(E)->Target.get(), Map);
    renameExpr(static_cast<AssignExpr *>(E)->Value.get(), Map);
    return;
  case Expr::Kind::Call: {
    auto *C = static_cast<CallExpr *>(E);
    renameExpr(C->Callee.get(), Map);
    for (ExprPtr &Arg : C->Args)
      renameExpr(Arg.get(), Map);
    return;
  }
  case Expr::Kind::Index:
    renameExpr(static_cast<IndexExpr *>(E)->Base.get(), Map);
    renameExpr(static_cast<IndexExpr *>(E)->Index.get(), Map);
    return;
  case Expr::Kind::Deref:
    renameExpr(static_cast<DerefExpr *>(E)->Pointer.get(), Map);
    return;
  case Expr::Kind::AddrOf:
    renameExpr(static_cast<AddrOfExpr *>(E)->Operand.get(), Map);
    return;
  case Expr::Kind::Ternary:
    renameExpr(static_cast<TernaryExpr *>(E)->Cond.get(), Map);
    renameExpr(static_cast<TernaryExpr *>(E)->Then.get(), Map);
    renameExpr(static_cast<TernaryExpr *>(E)->Else.get(), Map);
    return;
  }
}

class InlinerPass {
public:
  InlinerPass(Program &Prog, const InlineOptions &Options)
      : Prog(Prog), Options(Options) {}

  unsigned run();

private:
  struct CalleeInfo {
    FuncDecl *Func = nullptr;
    BodyFacts Facts;
    bool Eligible = false;
    /// Snapshot of the body at analysis time: expansions within one round
    /// must all come from the same pre-round body, or names introduced by
    /// earlier inlining would escape the rename map.
    std::unique_ptr<BlockStmt> Snapshot;
    /// The trailing `return expr;` (within Snapshot) for non-void callees.
    const ReturnStmt *FinalReturn = nullptr;
  };

  void analyzeCallees();
  void processFunction(FuncDecl &Func);
  void processBlock(BlockStmt &Block);
  /// Wraps non-block child statements so expansions have a place to go.
  void ensureBlocks(Stmt &S);

  /// If \p S is an inlinable call site, returns the expansion.
  bool expandSite(Stmt &S, std::vector<StmtPtr> &Out);
  std::vector<StmtPtr> expandCall(const CallExpr &Call,
                                  const CalleeInfo &Info,
                                  ExprPtr *ValueOut);

  Program &Prog;
  InlineOptions Options;
  std::map<std::string, CalleeInfo> Callees;
  std::set<std::string> CallerLocalNames;
  unsigned InlinedSites = 0;
  unsigned NameCounter = 0;
};

void InlinerPass::analyzeCallees() {
  Callees.clear();
  for (const auto &Func : Prog.Functions) {
    CalleeInfo Info;
    Info.Func = Func.get();
    collectStmt(Func->Body.get(), Info.Facts, /*InLoop=*/false);
    for (const auto &Param : Func->Params)
      Info.Facts.DeclaredNames.insert(Param->Name);
    StmtPtr Snapshot = cloneStmt(*Func->Body);
    Info.Snapshot.reset(static_cast<BlockStmt *>(Snapshot.release()));
    Callees[Func->Name] = std::move(Info);
  }
  // Functions involved in call cycles are never inlined: iteratively
  // mark functions whose callees are all acyclic.
  std::set<std::string> OnCycle;
  bool Changed = true;
  std::set<std::string> Safe;
  while (Changed) {
    Changed = false;
    for (auto &[Name, Info] : Callees) {
      if (Safe.count(Name))
        continue;
      bool AllSafe = true;
      for (const std::string &Callee : Info.Facts.CalledNames) {
        auto It = Callees.find(Callee);
        if (It != Callees.end() && !Safe.count(Callee))
          AllSafe = false;
      }
      if (AllSafe) {
        Safe.insert(Name);
        Changed = true;
      }
    }
  }
  for (auto &[Name, Info] : Callees) {
    if (!Safe.count(Name))
      continue; // recursive (directly or mutually)
    if (Info.Facts.NodeCount > Options.MaxNodes)
      continue;
    if (Info.Facts.TopLevelBreakOrContinue)
      continue;
    const std::vector<StmtPtr> &Body = Info.Func->Body->Body;
    if (Info.Func->ReturnType == TypeKind::Void) {
      if (Info.Facts.ReturnCount != 0)
        continue;
      Info.Eligible = true;
    } else {
      if (Info.Facts.ReturnCount != 1 || Body.empty() ||
          Body.back()->getKind() != Stmt::Kind::Return)
        continue;
      Info.FinalReturn = static_cast<const ReturnStmt *>(
          Info.Snapshot->Body.back().get());
      if (!Info.FinalReturn->Value)
        continue;
      Info.Eligible = true;
    }
  }
}

std::vector<StmtPtr> InlinerPass::expandCall(const CallExpr &Call,
                                             const CalleeInfo &Info,
                                             ExprPtr *ValueOut) {
  const FuncDecl &Callee = *Info.Func;
  const BlockStmt &Body = *Info.Snapshot;
  std::string Prefix = "__inl" + std::to_string(++NameCounter) + "_";
  std::map<std::string, std::string> Rename;
  for (const std::string &Name : Info.Facts.DeclaredNames)
    Rename[Name] = Prefix + Name;

  std::vector<StmtPtr> Out;
  // Bind arguments to fresh parameter copies.
  for (size_t A = 0; A != Callee.Params.size(); ++A) {
    auto Var = std::make_unique<VarDecl>();
    Var->Name = Rename[Callee.Params[A]->Name];
    Var->Type = Callee.Params[A]->Type;
    Var->Loc = Call.loc();
    Out.push_back(std::make_unique<DeclStmt>(
        std::move(Var), cloneExpr(*Call.Args[A]), Call.loc()));
  }
  // Body, minus the trailing return for value-producing callees.
  size_t BodyCount = Body.Body.size();
  if (Info.FinalReturn)
    --BodyCount;
  for (size_t S = 0; S != BodyCount; ++S) {
    StmtPtr Clone = cloneStmt(*Body.Body[S]);
    renameStmt(Clone.get(), Rename);
    Out.push_back(std::move(Clone));
  }
  if (ValueOut) {
    assert(Info.FinalReturn && "value requested from a void callee");
    ExprPtr Value = cloneExpr(*Info.FinalReturn->Value);
    renameExpr(Value.get(), Rename);
    *ValueOut = std::move(Value);
  }
  ++InlinedSites;
  return Out;
}

bool InlinerPass::expandSite(Stmt &S, std::vector<StmtPtr> &Out) {
  if (InlinedSites >= Options.MaxSites)
    return false;

  // Identifies an inlinable direct call and checks name hygiene: a free
  // (global) name the callee uses must not collide with a caller local,
  // which would re-bind it at the inline site.
  auto inlinable = [this](const Expr &E) -> const CalleeInfo * {
    if (E.getKind() != Expr::Kind::Call)
      return nullptr;
    const auto &Call = static_cast<const CallExpr &>(E);
    const auto &Name =
        static_cast<const VarRefExpr &>(*Call.Callee).Name;
    auto It = Callees.find(Name);
    if (It == Callees.end() || !It->second.Eligible)
      return nullptr;
    for (const std::string &Used : It->second.Facts.UsedNames)
      if (!It->second.Facts.DeclaredNames.count(Used) &&
          CallerLocalNames.count(Used))
        return nullptr;
    return &It->second;
  };

  if (S.getKind() == Stmt::Kind::ExprStmt) {
    Expr &E = *static_cast<ExprStmt &>(S).E;
    // Whole-statement call: f(args);
    if (const CalleeInfo *Info = inlinable(E)) {
      const auto &Call = static_cast<const CallExpr &>(E);
      ExprPtr Value;
      Out = expandCall(Call, *Info,
                       Info->FinalReturn ? &Value : nullptr);
      // A discarded return value may still have side effects: keep the
      // evaluation as an expression statement.
      if (Value)
        Out.push_back(std::make_unique<ExprStmt>(std::move(Value), S.loc()));
      return true;
    }
    // Assignment from a call: x = f(args);
    if (E.getKind() == Expr::Kind::Assign) {
      auto &Assign = static_cast<AssignExpr &>(E);
      if (const CalleeInfo *Info = inlinable(*Assign.Value)) {
        if (!Info->FinalReturn)
          return false;
        const auto &Call = static_cast<const CallExpr &>(*Assign.Value);
        ExprPtr Value;
        Out = expandCall(Call, *Info, &Value);
        Out.push_back(std::make_unique<ExprStmt>(
            std::make_unique<AssignExpr>(cloneExpr(*Assign.Target),
                                         std::move(Value), S.loc()),
            S.loc()));
        return true;
      }
    }
    return false;
  }

  if (S.getKind() == Stmt::Kind::DeclStmt) {
    auto &Decl = static_cast<DeclStmt &>(S);
    if (!Decl.InitExpr)
      return false;
    if (const CalleeInfo *Info = inlinable(*Decl.InitExpr)) {
      if (!Info->FinalReturn)
        return false;
      const auto &Call = static_cast<const CallExpr &>(*Decl.InitExpr);
      ExprPtr Value;
      Out = expandCall(Call, *Info, &Value);
      auto Var = std::make_unique<VarDecl>();
      Var->Name = Decl.Var->Name;
      Var->Type = Decl.Var->Type;
      Var->Loc = Decl.Var->Loc;
      Out.push_back(std::make_unique<DeclStmt>(std::move(Var),
                                               std::move(Value), S.loc()));
      return true;
    }
  }
  return false;
}

void InlinerPass::ensureBlocks(Stmt &S) {
  auto wrap = [](StmtPtr &Slot) {
    if (!Slot || Slot->getKind() == Stmt::Kind::Block)
      return;
    auto Block = std::make_unique<BlockStmt>(Slot->loc());
    Block->Body.push_back(std::move(Slot));
    Slot = std::move(Block);
  };
  switch (S.getKind()) {
  case Stmt::Kind::If: {
    auto &I = static_cast<IfStmt &>(S);
    wrap(I.Then);
    wrap(I.Else);
    return;
  }
  case Stmt::Kind::While:
    wrap(static_cast<WhileStmt &>(S).Body);
    return;
  case Stmt::Kind::For:
    wrap(static_cast<ForStmt &>(S).Body);
    return;
  default:
    return;
  }
}

void InlinerPass::processBlock(BlockStmt &Block) {
  std::vector<StmtPtr> NewBody;
  NewBody.reserve(Block.Body.size());
  for (StmtPtr &Child : Block.Body) {
    std::vector<StmtPtr> Expansion;
    if (expandSite(*Child, Expansion)) {
      for (StmtPtr &E : Expansion)
        NewBody.push_back(std::move(E));
      continue;
    }
    ensureBlocks(*Child);
    switch (Child->getKind()) {
    case Stmt::Kind::Block:
      processBlock(static_cast<BlockStmt &>(*Child));
      break;
    case Stmt::Kind::If: {
      auto &I = static_cast<IfStmt &>(*Child);
      processBlock(static_cast<BlockStmt &>(*I.Then));
      if (I.Else)
        processBlock(static_cast<BlockStmt &>(*I.Else));
      break;
    }
    case Stmt::Kind::While:
      processBlock(
          static_cast<BlockStmt &>(*static_cast<WhileStmt &>(*Child).Body));
      break;
    case Stmt::Kind::For:
      processBlock(
          static_cast<BlockStmt &>(*static_cast<ForStmt &>(*Child).Body));
      break;
    default:
      break;
    }
    NewBody.push_back(std::move(Child));
  }
  Block.Body = std::move(NewBody);
}

void InlinerPass::processFunction(FuncDecl &Func) {
  // Name hygiene needs every local the caller will ever declare,
  // including ones introduced by earlier inlining.
  BodyFacts Facts;
  collectStmt(Func.Body.get(), Facts, /*InLoop=*/false);
  CallerLocalNames = std::move(Facts.DeclaredNames);
  for (const auto &Param : Func.Params)
    CallerLocalNames.insert(Param->Name);
  processBlock(*Func.Body);
}

unsigned InlinerPass::run() {
  // Iterate: inlining f into g can expose g's own calls for the next
  // round (e.g. helpers calling helpers).
  unsigned Before;
  do {
    Before = InlinedSites;
    analyzeCallees();
    for (const auto &Func : Prog.Functions)
      processFunction(*Func);
  } while (InlinedSites != Before && InlinedSites < Options.MaxSites);
  return InlinedSites;
}

} // namespace

unsigned paco::inlineSmallFunctions(Program &Prog,
                                    const InlineOptions &Options) {
  InlinerPass Pass(Prog, Options);
  return Pass.run();
}
