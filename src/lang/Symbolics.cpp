//===- lang/Symbolics.cpp - Symbolic count/size analysis ------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/Symbolics.h"

#include "obs/Trace.h"

#include <algorithm>
#include <set>

using namespace paco;

std::string SymbolicInfo::dummyDescription(ParamId Id) const {
  for (const DummyOrigin &D : Dummies)
    if (D.Id == Id)
      return D.Description;
  return std::string();
}

namespace {

/// Facts about a statement subtree used for environment kills and the
/// branch-balance policy.
struct SubtreeFacts {
  std::set<const VarDecl *> Assigned;
  bool HasPointerStore = false;
  bool HasCall = false;
  bool HasLoop = false;
  bool HasBreak = false; ///< break not nested in an inner loop
  unsigned NodeCount = 0;
};

void collectExprFacts(const Expr *E, SubtreeFacts &Facts) {
  if (!E)
    return;
  ++Facts.NodeCount;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
    return;
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::Unary:
    collectExprFacts(static_cast<const UnaryExpr *>(E)->Operand.get(), Facts);
    return;
  case Expr::Kind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    collectExprFacts(B->LHS.get(), Facts);
    collectExprFacts(B->RHS.get(), Facts);
    return;
  }
  case Expr::Kind::Assign: {
    const auto *A = static_cast<const AssignExpr *>(E);
    collectExprFacts(A->Value.get(), Facts);
    if (A->Target->getKind() == Expr::Kind::VarRef) {
      const auto *Ref = static_cast<const VarRefExpr *>(A->Target.get());
      if (Ref->Var)
        Facts.Assigned.insert(Ref->Var);
    } else {
      Facts.HasPointerStore = true;
      collectExprFacts(A->Target.get(), Facts);
    }
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    Facts.HasCall = true;
    for (const ExprPtr &Arg : C->Args)
      collectExprFacts(Arg.get(), Facts);
    return;
  }
  case Expr::Kind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    collectExprFacts(I->Base.get(), Facts);
    collectExprFacts(I->Index.get(), Facts);
    return;
  }
  case Expr::Kind::Deref:
    collectExprFacts(static_cast<const DerefExpr *>(E)->Pointer.get(), Facts);
    return;
  case Expr::Kind::AddrOf:
    collectExprFacts(static_cast<const AddrOfExpr *>(E)->Operand.get(), Facts);
    return;
  case Expr::Kind::Ternary: {
    const auto *T = static_cast<const TernaryExpr *>(E);
    collectExprFacts(T->Cond.get(), Facts);
    collectExprFacts(T->Then.get(), Facts);
    collectExprFacts(T->Else.get(), Facts);
    return;
  }
  }
}

void collectStmtFacts(const Stmt *S, SubtreeFacts &Facts, bool InInnerLoop) {
  if (!S)
    return;
  ++Facts.NodeCount;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Body)
      collectStmtFacts(Child.get(), Facts, InInnerLoop);
    return;
  case Stmt::Kind::DeclStmt: {
    const auto *D = static_cast<const DeclStmt *>(S);
    collectExprFacts(D->InitExpr.get(), Facts);
    Facts.Assigned.insert(D->Var.get());
    return;
  }
  case Stmt::Kind::ExprStmt:
    collectExprFacts(static_cast<const ExprStmt *>(S)->E.get(), Facts);
    return;
  case Stmt::Kind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    collectExprFacts(I->Cond.get(), Facts);
    collectStmtFacts(I->Then.get(), Facts, InInnerLoop);
    collectStmtFacts(I->Else.get(), Facts, InInnerLoop);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    Facts.HasLoop = true;
    collectExprFacts(W->Cond.get(), Facts);
    collectStmtFacts(W->Body.get(), Facts, /*InInnerLoop=*/true);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = static_cast<const ForStmt *>(S);
    Facts.HasLoop = true;
    collectStmtFacts(F->Init.get(), Facts, InInnerLoop);
    collectExprFacts(F->Cond.get(), Facts);
    collectExprFacts(F->Step.get(), Facts);
    collectStmtFacts(F->Body.get(), Facts, /*InInnerLoop=*/true);
    return;
  }
  case Stmt::Kind::Return:
    collectExprFacts(static_cast<const ReturnStmt *>(S)->Value.get(), Facts);
    return;
  case Stmt::Kind::Break:
    if (!InInnerLoop)
      Facts.HasBreak = true;
    return;
  case Stmt::Kind::Continue:
    return;
  }
}

SubtreeFacts factsOf(const Stmt *S) {
  SubtreeFacts Facts;
  collectStmtFacts(S, Facts, /*InInnerLoop=*/false);
  return Facts;
}

class SymbolicAnalyzer {
public:
  SymbolicAnalyzer(const Program &Prog, ParamSpace &Space, DiagEngine &Diags)
      : Prog(Prog), Space(Space), Diags(Diags) {}

  SymbolicInfo run();

private:
  using Env = std::map<const VarDecl *, LinExpr>;

  void collectProgramFacts();
  void processFunction(const FuncDecl &Func);
  void walkStmt(const Stmt *S, Env &E, const LinExpr &Count);
  void applyExprEffects(const Expr *E, Env &Environment,
                        const LinExpr &Count);
  std::optional<LinExpr> evalExpr(const Expr *E, const Env &Environment) const;
  LinExpr annotationToLin(const Expr &E) const;
  std::optional<LinExpr> recognizeForTrip(const ForStmt &For, const Env &E);
  LinExpr makeDummy(const std::string &Kind, SourceLoc Loc, int64_t Lower,
                    int64_t Upper, const std::string &What);
  void killVars(Env &Environment, const std::set<const VarDecl *> &Vars,
                bool Globals, bool AddressTaken);
  void recordCall(const FuncDecl *Callee, const std::vector<ExprPtr> &Args,
                  const Env &Environment, const LinExpr &Count);
  void handleMalloc(const CallExpr &Call, const Expr *SizeAnnot,
                    const Env &Environment);

  const Program &Prog;
  ParamSpace &Space;
  DiagEngine &Diags;
  SymbolicInfo Info;

  std::set<const VarDecl *> AddressTakenVars;
  std::set<const FuncDecl *> AddressTakenFuncs;
  std::map<const FuncDecl *, std::set<const FuncDecl *>> Callees;
  /// Argument bindings accumulated from call sites; the inner optional is
  /// empty once two call sites disagree or a value is not expressible.
  std::map<const FuncDecl *, std::vector<std::optional<LinExpr>>> ArgValues;
  std::map<const FuncDecl *, bool> ArgValuesSeeded;
  unsigned DummyCounter = 0;
};

SymbolicInfo SymbolicAnalyzer::run() {
  // Declared run-time parameters occupy ParamIds 0..N-1 in order.
  for (const RuntimeParamDecl &P : Prog.RuntimeParams) {
    ParamId Id = Space.addParam(P.Name, BigInt(P.Lower), BigInt(P.Upper));
    (void)Id;
    assert(Id + 1 == Space.size() && "parameter registered out of order");
  }
  collectProgramFacts();

  // Process functions callers-first starting from main; recursion is not
  // analyzed (members of call-graph cycles get dummy entry counts).
  const FuncDecl *Main = Prog.findFunction("main");
  assert(Main && "sema guarantees main exists");
  Info.EntryCount[Main] = LinExpr::constant(1);

  std::vector<const FuncDecl *> Order;
  std::set<const FuncDecl *> Visited;
  // Iterative DFS over the call graph for a callers-first order; cycles
  // are broken arbitrarily and flagged below.
  std::vector<std::pair<const FuncDecl *, bool>> Stack = {{Main, false}};
  std::set<const FuncDecl *> OnStack;
  std::set<const FuncDecl *> Recursive;
  while (!Stack.empty()) {
    auto [F, Done] = Stack.back();
    Stack.pop_back();
    if (Done) {
      OnStack.erase(F);
      Order.push_back(F);
      continue;
    }
    if (Visited.count(F)) {
      if (OnStack.count(F))
        Recursive.insert(F);
      continue;
    }
    Visited.insert(F);
    OnStack.insert(F);
    Stack.push_back({F, true});
    for (const FuncDecl *Callee : Callees[F])
      Stack.push_back({Callee, false});
  }
  std::reverse(Order.begin(), Order.end()); // callers before callees

  for (const FuncDecl *F : Order) {
    if (Recursive.count(F)) {
      Info.EntryCount[F] =
          makeDummy("calls", F->Loc, 0, 1000000,
                    "entry count of recursive function '" + F->Name + "'");
      ArgValues[F].assign(F->Params.size(), std::nullopt);
    }
    if (!Info.EntryCount.count(F))
      Info.EntryCount[F] = LinExpr(); // unreachable from main
    processFunction(*F);
  }
  // Unreachable functions still get entries so lowering can query them.
  for (const auto &F : Prog.Functions)
    if (!Info.EntryCount.count(F.get())) {
      Info.EntryCount[F.get()] = LinExpr();
      processFunction(*F);
    }
  return std::move(Info);
}

void SymbolicAnalyzer::collectProgramFacts() {
  // Address-taken variables and functions, and the direct call graph.
  struct Collector {
    SymbolicAnalyzer &A;
    const FuncDecl *Current = nullptr;
    std::set<const FuncDecl *> HasIndirectCall;

    void expr(const Expr *E) {
      if (!E)
        return;
      switch (E->getKind()) {
      case Expr::Kind::AddrOf: {
        const auto *Ref = static_cast<const VarRefExpr *>(
            static_cast<const AddrOfExpr *>(E)->Operand.get());
        if (Ref->Var)
          A.AddressTakenVars.insert(Ref->Var);
        return;
      }
      case Expr::Kind::VarRef: {
        const auto *Ref = static_cast<const VarRefExpr *>(E);
        if (Ref->Function)
          A.AddressTakenFuncs.insert(Ref->Function);
        return;
      }
      case Expr::Kind::Call: {
        const auto *C = static_cast<const CallExpr *>(E);
        const auto *Callee = static_cast<const VarRefExpr *>(C->Callee.get());
        if (Callee->Function)
          A.Callees[Current].insert(Callee->Function);
        else if (C->BuiltinKind == CallExpr::Builtin::None)
          HasIndirectCall.insert(Current);
        // Note: the callee VarRef is deliberately not visited, so naming
        // a function in call position does not count as address-taken.
        for (const ExprPtr &Arg : C->Args)
          expr(Arg.get());
        return;
      }
      case Expr::Kind::Unary:
        expr(static_cast<const UnaryExpr *>(E)->Operand.get());
        return;
      case Expr::Kind::Binary:
        expr(static_cast<const BinaryExpr *>(E)->LHS.get());
        expr(static_cast<const BinaryExpr *>(E)->RHS.get());
        return;
      case Expr::Kind::Assign:
        expr(static_cast<const AssignExpr *>(E)->Target.get());
        expr(static_cast<const AssignExpr *>(E)->Value.get());
        return;
      case Expr::Kind::Index:
        expr(static_cast<const IndexExpr *>(E)->Base.get());
        expr(static_cast<const IndexExpr *>(E)->Index.get());
        return;
      case Expr::Kind::Deref:
        expr(static_cast<const DerefExpr *>(E)->Pointer.get());
        return;
      case Expr::Kind::Ternary:
        expr(static_cast<const TernaryExpr *>(E)->Cond.get());
        expr(static_cast<const TernaryExpr *>(E)->Then.get());
        expr(static_cast<const TernaryExpr *>(E)->Else.get());
        return;
      case Expr::Kind::IntLit:
      case Expr::Kind::FloatLit:
        return;
      }
    }

    void stmt(const Stmt *S) {
      if (!S)
        return;
      switch (S->getKind()) {
      case Stmt::Kind::Block:
        for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Body)
          stmt(Child.get());
        return;
      case Stmt::Kind::DeclStmt:
        expr(static_cast<const DeclStmt *>(S)->InitExpr.get());
        return;
      case Stmt::Kind::ExprStmt:
        expr(static_cast<const ExprStmt *>(S)->E.get());
        return;
      case Stmt::Kind::If: {
        const auto *I = static_cast<const IfStmt *>(S);
        expr(I->Cond.get());
        stmt(I->Then.get());
        stmt(I->Else.get());
        return;
      }
      case Stmt::Kind::While: {
        const auto *W = static_cast<const WhileStmt *>(S);
        expr(W->Cond.get());
        stmt(W->Body.get());
        return;
      }
      case Stmt::Kind::For: {
        const auto *F = static_cast<const ForStmt *>(S);
        stmt(F->Init.get());
        expr(F->Cond.get());
        expr(F->Step.get());
        stmt(F->Body.get());
        return;
      }
      case Stmt::Kind::Return:
        expr(static_cast<const ReturnStmt *>(S)->Value.get());
        return;
      case Stmt::Kind::Break:
      case Stmt::Kind::Continue:
        return;
      }
    }
  };
  Collector C{*this, nullptr, {}};
  for (const auto &F : Prog.Functions) {
    C.Current = F.get();
    C.stmt(F->Body.get());
  }
  // An indirect call can reach any address-taken function; give the call
  // graph those edges so the processing order still visits callers first.
  for (const FuncDecl *Caller : C.HasIndirectCall)
    for (const FuncDecl *Target : AddressTakenFuncs)
      Callees[Caller].insert(Target);
}

LinExpr SymbolicAnalyzer::makeDummy(const std::string &Kind, SourceLoc Loc,
                                    int64_t Lower, int64_t Upper,
                                    const std::string &What) {
  std::string Name = "d_" + Kind + "_" + std::to_string(Loc.Line) + "_" +
                     std::to_string(++DummyCounter);
  ParamId Id = Space.addDummy(Name, BigInt(Lower), BigInt(Upper));
  Info.Dummies.push_back({Id, What});
  return LinExpr::param(Id);
}

void SymbolicAnalyzer::killVars(Env &Environment,
                                const std::set<const VarDecl *> &Vars,
                                bool Globals, bool AddressTaken) {
  for (auto It = Environment.begin(); It != Environment.end();) {
    const VarDecl *Var = It->first;
    bool Kill = Vars.count(Var) || (Globals && Var->IsGlobal) ||
                (AddressTaken && AddressTakenVars.count(Var));
    It = Kill ? Environment.erase(It) : ++It;
  }
}

std::optional<LinExpr>
SymbolicAnalyzer::evalExpr(const Expr *E, const Env &Environment) const {
  if (!E)
    return std::nullopt;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return LinExpr::constant(static_cast<const IntLitExpr *>(E)->Value);
  case Expr::Kind::VarRef: {
    const auto *Ref = static_cast<const VarRefExpr *>(E);
    if (Ref->ParamIndex >= 0)
      return LinExpr::param(static_cast<ParamId>(Ref->ParamIndex));
    if (Ref->Var) {
      auto It = Environment.find(Ref->Var);
      if (It != Environment.end())
        return It->second;
    }
    return std::nullopt;
  }
  case Expr::Kind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    if (U->Op != UnaryOp::Neg)
      return std::nullopt;
    std::optional<LinExpr> Operand = evalExpr(U->Operand.get(), Environment);
    if (!Operand)
      return std::nullopt;
    return -*Operand;
  }
  case Expr::Kind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    std::optional<LinExpr> L = evalExpr(B->LHS.get(), Environment);
    std::optional<LinExpr> R = evalExpr(B->RHS.get(), Environment);
    if (!L || !R)
      return std::nullopt;
    switch (B->Op) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return LinExpr::mul(*L, *R, Space);
    case BinaryOp::Div: {
      std::optional<Rational> Divisor = R->asConstant();
      if (!Divisor || Divisor->isZero())
        return std::nullopt;
      return *L * (Rational(1) / *Divisor);
    }
    case BinaryOp::Shl: {
      std::optional<Rational> Amount = R->asConstant();
      if (!Amount || !Amount->isInteger() || Amount->isNegative() ||
          Amount->numerator() > BigInt(62))
        return std::nullopt;
      return *L * Rational(int64_t(1) << Amount->numerator().toInt64());
    }
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

LinExpr SymbolicAnalyzer::annotationToLin(const Expr &E) const {
  Env Empty;
  std::optional<LinExpr> Value = evalExpr(&E, Empty);
  if (!Value) {
    Diags.error(E.loc(), "annotation expression is not affine over the "
                         "run-time parameters (use +, -, *, / by constant)");
    return LinExpr();
  }
  return *Value;
}

void SymbolicAnalyzer::recordCall(const FuncDecl *Callee,
                                  const std::vector<ExprPtr> &Args,
                                  const Env &Environment,
                                  const LinExpr &Count) {
  auto [It, Inserted] = Info.EntryCount.emplace(Callee, Count);
  if (!Inserted)
    It->second += Count;
  std::vector<std::optional<LinExpr>> &Bindings = ArgValues[Callee];
  if (!ArgValuesSeeded[Callee]) {
    ArgValuesSeeded[Callee] = true;
    Bindings.clear();
    for (const ExprPtr &Arg : Args)
      Bindings.push_back(evalExpr(Arg.get(), Environment));
  } else {
    for (size_t I = 0; I != Bindings.size() && I != Args.size(); ++I) {
      if (!Bindings[I])
        continue;
      std::optional<LinExpr> Value = evalExpr(Args[I].get(), Environment);
      if (!Value || !(*Value == *Bindings[I]))
        Bindings[I] = std::nullopt;
    }
  }
}

void SymbolicAnalyzer::handleMalloc(const CallExpr &Call,
                                    const Expr *SizeAnnot,
                                    const Env &Environment) {
  if (SizeAnnot) {
    Info.MallocSize[&Call] = annotationToLin(*SizeAnnot);
    return;
  }
  if (std::optional<LinExpr> Size =
          evalExpr(Call.Args[0].get(), Environment)) {
    Info.MallocSize[&Call] = *Size;
    return;
  }
  Info.MallocSize[&Call] =
      makeDummy("size", Call.loc(), 0, 1000000,
                "allocation size of malloc at " + Call.loc().toString());
}

void SymbolicAnalyzer::applyExprEffects(const Expr *E, Env &Environment,
                                        const LinExpr &Count) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::Unary:
    applyExprEffects(static_cast<const UnaryExpr *>(E)->Operand.get(),
                     Environment, Count);
    return;
  case Expr::Kind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    applyExprEffects(B->LHS.get(), Environment, Count);
    if (B->Op == BinaryOp::LAnd || B->Op == BinaryOp::LOr) {
      // The RHS runs conditionally: keep its value updates out of the
      // environment but kill whatever it may assign.
      SubtreeFacts Facts;
      collectExprFacts(B->RHS.get(), Facts);
      killVars(Environment, Facts.Assigned, Facts.HasCall,
               Facts.HasPointerStore || Facts.HasCall);
      // Calls on the conditional path still contribute (over-counted by
      // at most the short-circuit factor; acceptable for cost analysis).
      applyExprEffects(B->RHS.get(), Environment, Count);
      return;
    }
    applyExprEffects(B->RHS.get(), Environment, Count);
    return;
  }
  case Expr::Kind::Assign: {
    const auto *A = static_cast<const AssignExpr *>(E);
    applyExprEffects(A->Value.get(), Environment, Count);
    if (A->Value->getKind() == Expr::Kind::Call) {
      const auto *Call = static_cast<const CallExpr *>(A->Value.get());
      if (Call->BuiltinKind == CallExpr::Builtin::Malloc &&
          !Info.MallocSize.count(Call))
        handleMalloc(*Call, nullptr, Environment);
    }
    if (A->Target->getKind() == Expr::Kind::VarRef) {
      const auto *Ref = static_cast<const VarRefExpr *>(A->Target.get());
      if (Ref->Var) {
        std::optional<LinExpr> Value = evalExpr(A->Value.get(), Environment);
        if (Value)
          Environment[Ref->Var] = *Value;
        else
          Environment.erase(Ref->Var);
      }
      return;
    }
    // Store through a pointer or array: invalidate globals and anything
    // address-taken.
    applyExprEffects(A->Target.get(), Environment, Count);
    killVars(Environment, {}, /*Globals=*/true, /*AddressTaken=*/true);
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    for (const ExprPtr &Arg : C->Args)
      applyExprEffects(Arg.get(), Environment, Count);
    const auto *Callee = static_cast<const VarRefExpr *>(C->Callee.get());
    if (C->BuiltinKind == CallExpr::Builtin::Malloc) {
      if (!Info.MallocSize.count(C))
        handleMalloc(*C, nullptr, Environment);
      return;
    }
    if (C->BuiltinKind != CallExpr::Builtin::None)
      return; // io_* builtins have no symbolic effects
    if (Callee->Function) {
      recordCall(Callee->Function, C->Args, Environment, Count);
    } else {
      // Indirect call: any address-taken function may run.
      for (const FuncDecl *Target : AddressTakenFuncs)
        recordCall(Target, {}, Environment, Count);
    }
    killVars(Environment, {}, /*Globals=*/true, /*AddressTaken=*/true);
    return;
  }
  case Expr::Kind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    applyExprEffects(I->Base.get(), Environment, Count);
    applyExprEffects(I->Index.get(), Environment, Count);
    return;
  }
  case Expr::Kind::Deref:
    applyExprEffects(static_cast<const DerefExpr *>(E)->Pointer.get(),
                     Environment, Count);
    return;
  case Expr::Kind::AddrOf:
    return;
  case Expr::Kind::Ternary: {
    const auto *T = static_cast<const TernaryExpr *>(E);
    applyExprEffects(T->Cond.get(), Environment, Count);
    SubtreeFacts Facts;
    collectExprFacts(T->Then.get(), Facts);
    collectExprFacts(T->Else.get(), Facts);
    killVars(Environment, Facts.Assigned, Facts.HasCall,
             Facts.HasPointerStore || Facts.HasCall);
    applyExprEffects(T->Then.get(), Environment, Count);
    applyExprEffects(T->Else.get(), Environment, Count);
    return;
  }
  }
}

std::optional<LinExpr>
SymbolicAnalyzer::recognizeForTrip(const ForStmt &For, const Env &E) {
  // Pattern: for (i = A; i <cmp> B; i = i +/- C) with C a positive
  // integer constant, A and B affine over the parameters, and i not
  // otherwise assigned in the loop.
  const VarDecl *IndVar = nullptr;
  std::optional<LinExpr> Start;
  if (!For.Init || !For.Cond || !For.Step)
    return std::nullopt;
  if (For.Init->getKind() == Stmt::Kind::DeclStmt) {
    const auto *D = static_cast<const DeclStmt *>(For.Init.get());
    IndVar = D->Var.get();
    Start = evalExpr(D->InitExpr.get(), E);
  } else if (For.Init->getKind() == Stmt::Kind::ExprStmt) {
    const auto *ES = static_cast<const ExprStmt *>(For.Init.get());
    if (ES->E->getKind() != Expr::Kind::Assign)
      return std::nullopt;
    const auto *A = static_cast<const AssignExpr *>(ES->E.get());
    if (A->Target->getKind() != Expr::Kind::VarRef)
      return std::nullopt;
    IndVar = static_cast<const VarRefExpr *>(A->Target.get())->Var;
    Start = evalExpr(A->Value.get(), E);
  }
  if (!IndVar || !Start)
    return std::nullopt;

  if (For.Cond->getKind() != Expr::Kind::Binary)
    return std::nullopt;
  const auto *Cond = static_cast<const BinaryExpr *>(For.Cond.get());
  if (Cond->LHS->getKind() != Expr::Kind::VarRef ||
      static_cast<const VarRefExpr *>(Cond->LHS.get())->Var != IndVar)
    return std::nullopt;
  std::optional<LinExpr> Bound = evalExpr(Cond->RHS.get(), E);
  if (!Bound)
    return std::nullopt;

  // Step: i = i + C or i = i - C (++/-- desugar to this form).
  if (For.Step->getKind() != Expr::Kind::Assign)
    return std::nullopt;
  const auto *Step = static_cast<const AssignExpr *>(For.Step.get());
  if (Step->Target->getKind() != Expr::Kind::VarRef ||
      static_cast<const VarRefExpr *>(Step->Target.get())->Var != IndVar)
    return std::nullopt;
  if (Step->Value->getKind() != Expr::Kind::Binary)
    return std::nullopt;
  const auto *Inc = static_cast<const BinaryExpr *>(Step->Value.get());
  if (Inc->LHS->getKind() != Expr::Kind::VarRef ||
      static_cast<const VarRefExpr *>(Inc->LHS.get())->Var != IndVar ||
      Inc->RHS->getKind() != Expr::Kind::IntLit)
    return std::nullopt;
  int64_t StepBy = static_cast<const IntLitExpr *>(Inc->RHS.get())->Value;
  if (Inc->Op == BinaryOp::Sub)
    StepBy = -StepBy;
  else if (Inc->Op != BinaryOp::Add)
    return std::nullopt;
  if (StepBy == 0)
    return std::nullopt;

  // The induction variable must not be assigned in the body, and the
  // body must not break out early.
  SubtreeFacts Facts = factsOf(For.Body.get());
  if (Facts.Assigned.count(IndVar) || Facts.HasBreak)
    return std::nullopt;

  Rational StepMag(StepBy > 0 ? StepBy : -StepBy);
  switch (Cond->Op) {
  case BinaryOp::Lt:
    if (StepBy < 0)
      return std::nullopt;
    return (*Bound - *Start) * (Rational(1) / StepMag);
  case BinaryOp::Le:
    if (StepBy < 0)
      return std::nullopt;
    return (*Bound - *Start + LinExpr(StepMag)) * (Rational(1) / StepMag);
  case BinaryOp::Gt:
    if (StepBy > 0)
      return std::nullopt;
    return (*Start - *Bound) * (Rational(1) / StepMag);
  case BinaryOp::Ge:
    if (StepBy > 0)
      return std::nullopt;
    return (*Start - *Bound + LinExpr(StepMag)) * (Rational(1) / StepMag);
  default:
    return std::nullopt;
  }
}

void SymbolicAnalyzer::walkStmt(const Stmt *S, Env &E, const LinExpr &Count) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Body)
      walkStmt(Child.get(), E, Count);
    return;
  case Stmt::Kind::DeclStmt: {
    const auto *D = static_cast<const DeclStmt *>(S);
    if (D->InitExpr && D->InitExpr->getKind() == Expr::Kind::Call) {
      const auto *Call = static_cast<const CallExpr *>(D->InitExpr.get());
      if (Call->BuiltinKind == CallExpr::Builtin::Malloc)
        handleMalloc(*Call, D->SizeAnnot.get(), E);
    }
    applyExprEffects(D->InitExpr.get(), E, Count);
    if (D->InitExpr) {
      if (std::optional<LinExpr> Value = evalExpr(D->InitExpr.get(), E))
        E[D->Var.get()] = *Value;
    }
    return;
  }
  case Stmt::Kind::ExprStmt:
    applyExprEffects(static_cast<const ExprStmt *>(S)->E.get(), E, Count);
    return;
  case Stmt::Kind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    applyExprEffects(I->Cond.get(), E, Count);
    LinExpr Freq;
    if (I->CondAnnot) {
      Freq = annotationToLin(*I->CondAnnot);
    } else if (std::optional<LinExpr> CondVal = evalExpr(I->Cond.get(), E);
               CondVal && CondVal->isConstant()) {
      Freq = LinExpr::constant(CondVal->asConstant()->isZero() ? 0 : 1);
    } else {
      // Balanced branches barely affect partitioning (paper section 3.4);
      // assume an even split for them and introduce a dummy frequency
      // only when a branch carries a call, a loop, or much more code.
      SubtreeFacts ThenFacts = factsOf(I->Then.get());
      SubtreeFacts ElseFacts = factsOf(I->Else.get());
      bool Heavy = ThenFacts.HasCall || ThenFacts.HasLoop ||
                   ElseFacts.HasCall || ElseFacts.HasLoop;
      unsigned Big = std::max(ThenFacts.NodeCount, ElseFacts.NodeCount);
      unsigned Small = std::min(ThenFacts.NodeCount, ElseFacts.NodeCount);
      if (Heavy || Big > Small + 8)
        Freq = makeDummy("freq", S->loc(), 0, 100,
                         "true-branch frequency of if at " +
                             S->loc().toString()) *
               Rational::fraction(1, 100);
      else
        Freq = LinExpr(Rational::fraction(1, 2));
    }
    Info.IfFreq[S] = Freq;
    LinExpr ThenCount = LinExpr::mul(Count, Freq, Space);
    LinExpr ElseCount =
        LinExpr::mul(Count, LinExpr::constant(1) - Freq, Space);
    Env ThenEnv = E, ElseEnv = E;
    walkStmt(I->Then.get(), ThenEnv, ThenCount);
    walkStmt(I->Else.get(), ElseEnv, ElseCount);
    // Keep only bindings both paths agree on.
    Env Merged;
    for (const auto &[Var, Value] : ThenEnv) {
      auto It = ElseEnv.find(Var);
      if (It != ElseEnv.end() && It->second == Value)
        Merged.emplace(Var, Value);
    }
    E = std::move(Merged);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    LinExpr Trip = W->TripAnnot
                       ? annotationToLin(*W->TripAnnot)
                       : makeDummy("trip", S->loc(), 0, 1000000,
                                   "trip count of while loop at " +
                                       S->loc().toString());
    Info.LoopTrip[S] = Trip;
    SubtreeFacts Facts = factsOf(W->Body.get());
    SubtreeFacts CondFacts;
    collectExprFacts(W->Cond.get(), CondFacts);
    killVars(E, Facts.Assigned, Facts.HasCall || CondFacts.HasCall,
             Facts.HasPointerStore || Facts.HasCall);
    killVars(E, CondFacts.Assigned, false, CondFacts.HasPointerStore);
    LinExpr BodyCount = LinExpr::mul(Count, Trip, Space);
    applyExprEffects(W->Cond.get(), E, Count);
    walkStmt(W->Body.get(), E, BodyCount);
    killVars(E, Facts.Assigned, Facts.HasCall,
             Facts.HasPointerStore || Facts.HasCall);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = static_cast<const ForStmt *>(S);
    if (F->Init)
      walkStmt(F->Init.get(), E, Count);
    LinExpr Trip;
    if (F->TripAnnot) {
      Trip = annotationToLin(*F->TripAnnot);
    } else if (std::optional<LinExpr> Known = recognizeForTrip(*F, E)) {
      Trip = *Known;
    } else {
      Trip = makeDummy("trip", S->loc(), 0, 1000000,
                       "trip count of for loop at " + S->loc().toString());
    }
    Info.LoopTrip[S] = Trip;
    SubtreeFacts Facts = factsOf(F->Body.get());
    SubtreeFacts StepFacts;
    collectExprFacts(F->Step.get(), StepFacts);
    collectExprFacts(F->Cond.get(), StepFacts);
    killVars(E, Facts.Assigned, Facts.HasCall || StepFacts.HasCall,
             Facts.HasPointerStore || Facts.HasCall);
    killVars(E, StepFacts.Assigned, false, StepFacts.HasPointerStore);
    LinExpr BodyCount = LinExpr::mul(Count, Trip, Space);
    walkStmt(F->Body.get(), E, BodyCount);
    if (F->Step) {
      Env Scratch = E;
      applyExprEffects(F->Step.get(), Scratch, BodyCount);
    }
    killVars(E, Facts.Assigned, Facts.HasCall,
             Facts.HasPointerStore || Facts.HasCall);
    killVars(E, StepFacts.Assigned, false, StepFacts.HasPointerStore);
    return;
  }
  case Stmt::Kind::Return:
    applyExprEffects(static_cast<const ReturnStmt *>(S)->Value.get(), E,
                     Count);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void SymbolicAnalyzer::processFunction(const FuncDecl &Func) {
  Env E;
  const std::vector<std::optional<LinExpr>> &Bindings = ArgValues[&Func];
  for (size_t I = 0; I != Func.Params.size() && I != Bindings.size(); ++I)
    if (Bindings[I])
      E[Func.Params[I].get()] = *Bindings[I];
  walkStmt(Func.Body.get(), E, Info.EntryCount[&Func]);
}

} // namespace

SymbolicInfo paco::analyzeSymbolics(const Program &Prog, ParamSpace &Space,
                                    DiagEngine &Diags) {
  obs::ScopedSpan Span("lang.symbolics", "lang");
  SymbolicAnalyzer Analyzer(Prog, Space, Diags);
  return Analyzer.run();
}
