//===- lang/PrintAST.cpp - MiniC source printer ---------------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/PrintAST.h"

#include <cstdio>

using namespace paco;

namespace {

const char *typeSpelling(TypeKind T) {
  switch (T) {
  case TypeKind::Void:      return "void";
  case TypeKind::Int:       return "int";
  case TypeKind::Double:    return "double";
  case TypeKind::IntPtr:    return "int *";
  case TypeKind::DoublePtr: return "double *";
  case TypeKind::Func:      return "func";
  }
  return "?";
}

const char *binOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:  return "+";
  case BinaryOp::Sub:  return "-";
  case BinaryOp::Mul:  return "*";
  case BinaryOp::Div:  return "/";
  case BinaryOp::Rem:  return "%";
  case BinaryOp::And:  return "&";
  case BinaryOp::Or:   return "|";
  case BinaryOp::Xor:  return "^";
  case BinaryOp::Shl:  return "<<";
  case BinaryOp::Shr:  return ">>";
  case BinaryOp::Lt:   return "<";
  case BinaryOp::Gt:   return ">";
  case BinaryOp::Le:   return "<=";
  case BinaryOp::Ge:   return ">=";
  case BinaryOp::Eq:   return "==";
  case BinaryOp::Ne:   return "!=";
  case BinaryOp::LAnd: return "&&";
  case BinaryOp::LOr:  return "||";
  }
  return "?";
}

std::string floatLiteral(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", V);
  std::string Text(Buffer);
  // Ensure the literal re-lexes as a float.
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find("inf") == std::string::npos &&
      Text.find("nan") == std::string::npos)
    Text += ".0";
  return Text;
}

std::string indentOf(unsigned Indent) { return std::string(Indent * 2, ' '); }

} // namespace

std::string paco::printExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return std::to_string(static_cast<const IntLitExpr &>(E).Value);
  case Expr::Kind::FloatLit:
    return floatLiteral(static_cast<const FloatLitExpr &>(E).Value);
  case Expr::Kind::VarRef:
    return static_cast<const VarRefExpr &>(E).Name;
  case Expr::Kind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    const char *Op = U.Op == UnaryOp::Neg ? "-"
                     : U.Op == UnaryOp::Not ? "!"
                                            : "~";
    return std::string(Op) + "(" + printExpr(*U.Operand) + ")";
  }
  case Expr::Kind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    return "(" + printExpr(*B.LHS) + " " + binOpSpelling(B.Op) + " " +
           printExpr(*B.RHS) + ")";
  }
  case Expr::Kind::Assign: {
    const auto &A = static_cast<const AssignExpr &>(E);
    return printExpr(*A.Target) + " = " + printExpr(*A.Value);
  }
  case Expr::Kind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    std::string Out = printExpr(*C.Callee) + "(";
    for (size_t A = 0; A != C.Args.size(); ++A) {
      if (A)
        Out += ", ";
      Out += printExpr(*C.Args[A]);
    }
    return Out + ")";
  }
  case Expr::Kind::Index: {
    const auto &I = static_cast<const IndexExpr &>(E);
    return printExpr(*I.Base) + "[" + printExpr(*I.Index) + "]";
  }
  case Expr::Kind::Deref:
    return "*(" + printExpr(*static_cast<const DerefExpr &>(E).Pointer) +
           ")";
  case Expr::Kind::AddrOf:
    return "&" + printExpr(*static_cast<const AddrOfExpr &>(E).Operand);
  case Expr::Kind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    return "(" + printExpr(*T.Cond) + " ? " + printExpr(*T.Then) + " : " +
           printExpr(*T.Else) + ")";
  }
  }
  return "?";
}

std::string paco::printStmt(const Stmt &S, unsigned Indent) {
  std::string Pad = indentOf(Indent);
  std::string Out;
  if (S.TripAnnot)
    Out += Pad + "@trip(" + printExpr(*S.TripAnnot) + ")\n";
  if (S.CondAnnot)
    Out += Pad + "@cond(" + printExpr(*S.CondAnnot) + ")\n";
  switch (S.getKind()) {
  case Stmt::Kind::Block: {
    const auto &B = static_cast<const BlockStmt &>(S);
    Out += Pad + "{\n";
    for (const StmtPtr &Child : B.Body)
      Out += printStmt(*Child, Indent + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::Kind::DeclStmt: {
    const auto &D = static_cast<const DeclStmt &>(S);
    if (D.SizeAnnot)
      Out += Pad + "@size(" + printExpr(*D.SizeAnnot) + ")\n";
    Out += Pad + std::string(typeSpelling(D.Var->Type)) + " " + D.Var->Name;
    if (D.Var->IsArray)
      Out += "[" + std::to_string(D.Var->ArraySize) + "]";
    if (D.InitExpr)
      Out += " = " + printExpr(*D.InitExpr);
    Out += ";\n";
    return Out;
  }
  case Stmt::Kind::ExprStmt:
    return Out + Pad + printExpr(*static_cast<const ExprStmt &>(S).E) +
           ";\n";
  case Stmt::Kind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    Out += Pad + "if (" + printExpr(*I.Cond) + ")\n";
    Out += printStmt(*I.Then, Indent + 1);
    if (I.Else) {
      Out += Pad + "else\n";
      Out += printStmt(*I.Else, Indent + 1);
    }
    return Out;
  }
  case Stmt::Kind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    Out += Pad + "while (" + printExpr(*W.Cond) + ")\n";
    Out += printStmt(*W.Body, Indent + 1);
    return Out;
  }
  case Stmt::Kind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    Out += Pad + "for (";
    if (F.Init) {
      std::string Init = printStmt(*F.Init, 0);
      // Strip indentation and the trailing newline; keep the ';'.
      while (!Init.empty() && (Init.back() == '\n' || Init.back() == ' '))
        Init.pop_back();
      Out += Init;
    } else {
      Out += ";";
    }
    Out += " ";
    if (F.Cond)
      Out += printExpr(*F.Cond);
    Out += "; ";
    if (F.Step)
      Out += printExpr(*F.Step);
    Out += ")\n";
    Out += printStmt(*F.Body, Indent + 1);
    return Out;
  }
  case Stmt::Kind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    Out += Pad + "return";
    if (R.Value)
      Out += " " + printExpr(*R.Value);
    return Out + ";\n";
  }
  case Stmt::Kind::Break:
    return Out + Pad + "break;\n";
  case Stmt::Kind::Continue:
    return Out + Pad + "continue;\n";
  }
  return Out;
}

std::string paco::printProgram(const Program &Prog) {
  std::string Out;
  for (const RuntimeParamDecl &P : Prog.RuntimeParams)
    Out += "param int " + P.Name + " in [" + std::to_string(P.Lower) + ", " +
           std::to_string(P.Upper) + "];\n";
  if (!Prog.RuntimeParams.empty())
    Out += "\n";
  for (const auto &G : Prog.Globals) {
    Out += std::string(typeSpelling(G->Type)) + " " + G->Name;
    if (G->IsArray)
      Out += "[" + std::to_string(G->ArraySize) + "]";
    if (!G->Init.empty()) {
      if (G->IsArray) {
        Out += " = {";
        for (size_t I = 0; I != G->Init.size(); ++I) {
          if (I)
            Out += ", ";
          Out += printExpr(*G->Init[I]);
        }
        Out += "}";
      } else {
        Out += " = " + printExpr(*G->Init[0]);
      }
    }
    Out += ";\n";
  }
  if (!Prog.Globals.empty())
    Out += "\n";
  for (const auto &F : Prog.Functions) {
    Out += std::string(typeSpelling(F->ReturnType)) + " " + F->Name + "(";
    for (size_t P = 0; P != F->Params.size(); ++P) {
      if (P)
        Out += ", ";
      Out += std::string(typeSpelling(F->Params[P]->Type)) + " " +
             F->Params[P]->Name;
    }
    Out += ")\n";
    Out += printStmt(*F->Body, 0);
    Out += "\n";
  }
  return Out;
}
