//===- lang/Lexer.cpp - MiniC lexer ---------------------------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "obs/Trace.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace paco;

const char *paco::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Identifier:     return "identifier";
  case TokKind::IntLiteral:     return "integer literal";
  case TokKind::FloatLiteral:   return "floating literal";
  case TokKind::KwInt:          return "'int'";
  case TokKind::KwDouble:       return "'double'";
  case TokKind::KwVoid:         return "'void'";
  case TokKind::KwFunc:         return "'func'";
  case TokKind::KwIf:           return "'if'";
  case TokKind::KwElse:         return "'else'";
  case TokKind::KwWhile:        return "'while'";
  case TokKind::KwFor:          return "'for'";
  case TokKind::KwReturn:       return "'return'";
  case TokKind::KwBreak:        return "'break'";
  case TokKind::KwContinue:     return "'continue'";
  case TokKind::KwParam:        return "'param'";
  case TokKind::KwIn:           return "'in'";
  case TokKind::AtTrip:         return "'@trip'";
  case TokKind::AtCond:         return "'@cond'";
  case TokKind::AtSize:         return "'@size'";
  case TokKind::LParen:         return "'('";
  case TokKind::RParen:         return "')'";
  case TokKind::LBrace:         return "'{'";
  case TokKind::RBrace:         return "'}'";
  case TokKind::LBracket:       return "'['";
  case TokKind::RBracket:       return "']'";
  case TokKind::Comma:          return "','";
  case TokKind::Semicolon:      return "';'";
  case TokKind::Question:       return "'?'";
  case TokKind::Colon:          return "':'";
  case TokKind::Plus:           return "'+'";
  case TokKind::Minus:          return "'-'";
  case TokKind::Star:           return "'*'";
  case TokKind::Slash:          return "'/'";
  case TokKind::Percent:        return "'%'";
  case TokKind::Amp:            return "'&'";
  case TokKind::Pipe:           return "'|'";
  case TokKind::Caret:          return "'^'";
  case TokKind::Tilde:          return "'~'";
  case TokKind::Bang:           return "'!'";
  case TokKind::Less:           return "'<'";
  case TokKind::Greater:        return "'>'";
  case TokKind::LessEqual:      return "'<='";
  case TokKind::GreaterEqual:   return "'>='";
  case TokKind::EqualEqual:     return "'=='";
  case TokKind::BangEqual:      return "'!='";
  case TokKind::AmpAmp:         return "'&&'";
  case TokKind::PipePipe:       return "'||'";
  case TokKind::LessLess:       return "'<<'";
  case TokKind::GreaterGreater: return "'>>'";
  case TokKind::Equal:          return "'='";
  case TokKind::PlusEqual:      return "'+='";
  case TokKind::MinusEqual:     return "'-='";
  case TokKind::StarEqual:      return "'*='";
  case TokKind::SlashEqual:     return "'/='";
  case TokKind::PercentEqual:   return "'%='";
  case TokKind::AmpEqual:       return "'&='";
  case TokKind::PipeEqual:      return "'|='";
  case TokKind::CaretEqual:     return "'^='";
  case TokKind::LessLessEqual:  return "'<<='";
  case TokKind::GreaterGreaterEqual: return "'>>='";
  case TokKind::PlusPlus:       return "'++'";
  case TokKind::MinusMinus:     return "'--'";
  case TokKind::Eof:            return "end of input";
  case TokKind::Error:          return "invalid token";
  }
  return "unknown token";
}

std::vector<Token> Lexer::lexAll() {
  obs::ScopedSpan Span("lang.lex", "lang");
  std::vector<Token> Tokens;
  while (true) {
    Token Tok = next();
    bool Done = Tok.is(TokKind::Eof);
    Tokens.push_back(std::move(Tok));
    if (Done)
      break;
  }
  Span.arg("tokens", static_cast<uint64_t>(Tokens.size()));
  return Tokens;
}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start{Line, Column};
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Source.size()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind, SourceLoc Loc) const {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  return Tok;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc{Line, Column};
  if (Pos >= Source.size())
    return makeToken(TokKind::Eof, Loc);
  char C = advance();
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
    --Pos;
    --Column;
    return lexNumber(Loc);
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    --Pos;
    --Column;
    return lexIdentifier(Loc);
  }
  switch (C) {
  case '@': return lexAnnotation(Loc);
  case '(': return makeToken(TokKind::LParen, Loc);
  case ')': return makeToken(TokKind::RParen, Loc);
  case '{': return makeToken(TokKind::LBrace, Loc);
  case '}': return makeToken(TokKind::RBrace, Loc);
  case '[': return makeToken(TokKind::LBracket, Loc);
  case ']': return makeToken(TokKind::RBracket, Loc);
  case ',': return makeToken(TokKind::Comma, Loc);
  case ';': return makeToken(TokKind::Semicolon, Loc);
  case '?': return makeToken(TokKind::Question, Loc);
  case ':': return makeToken(TokKind::Colon, Loc);
  case '~': return makeToken(TokKind::Tilde, Loc);
  case '^':
    return makeToken(match('=') ? TokKind::CaretEqual : TokKind::Caret, Loc);
  case '%':
    return makeToken(match('=') ? TokKind::PercentEqual : TokKind::Percent,
                     Loc);
  case '+':
    if (match('+'))
      return makeToken(TokKind::PlusPlus, Loc);
    return makeToken(match('=') ? TokKind::PlusEqual : TokKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokKind::MinusMinus, Loc);
    return makeToken(match('=') ? TokKind::MinusEqual : TokKind::Minus, Loc);
  case '*':
    return makeToken(match('=') ? TokKind::StarEqual : TokKind::Star, Loc);
  case '/':
    return makeToken(match('=') ? TokKind::SlashEqual : TokKind::Slash, Loc);
  case '!':
    return makeToken(match('=') ? TokKind::BangEqual : TokKind::Bang, Loc);
  case '=':
    return makeToken(match('=') ? TokKind::EqualEqual : TokKind::Equal, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokKind::AmpAmp, Loc);
    return makeToken(match('=') ? TokKind::AmpEqual : TokKind::Amp, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokKind::PipePipe, Loc);
    return makeToken(match('=') ? TokKind::PipeEqual : TokKind::Pipe, Loc);
  case '<':
    if (match('='))
      return makeToken(TokKind::LessEqual, Loc);
    if (match('<'))
      return makeToken(match('=') ? TokKind::LessLessEqual
                                  : TokKind::LessLess,
                       Loc);
    return makeToken(TokKind::Less, Loc);
  case '>':
    if (match('='))
      return makeToken(TokKind::GreaterEqual, Loc);
    if (match('>'))
      return makeToken(match('=') ? TokKind::GreaterGreaterEqual
                                  : TokKind::GreaterGreater,
                       Loc);
    return makeToken(TokKind::Greater, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokKind::Error, Loc);
  }
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  bool IsFloat = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
      Diags.error(Loc, "expected hexadecimal digits after '0x'");
      return makeToken(TokKind::Error, Loc);
    }
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
    Token Tok = makeToken(TokKind::IntLiteral, Loc);
    Tok.IntValue = static_cast<int64_t>(
        std::strtoull(Source.substr(Start, Pos - Start).c_str(), nullptr, 16));
    return Tok;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Mark = Pos;
    unsigned MarkColumn = Column;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      // Not an exponent after all; leave 'e' for the caller. The column
      // must rewind with the position or every later diagnostic on the
      // line points past the true spot.
      Pos = Mark;
      Column = MarkColumn;
    }
  }
  std::string Text = Source.substr(Start, Pos - Start);
  if (IsFloat) {
    Token Tok = makeToken(TokKind::FloatLiteral, Loc);
    Tok.FloatValue = std::strtod(Text.c_str(), nullptr);
    return Tok;
  }
  Token Tok = makeToken(TokKind::IntLiteral, Loc);
  Tok.IntValue = static_cast<int64_t>(std::strtoll(Text.c_str(), nullptr, 10));
  return Tok;
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);
  static const std::map<std::string, TokKind> Keywords = {
      {"int", TokKind::KwInt},         {"double", TokKind::KwDouble},
      {"void", TokKind::KwVoid},       {"func", TokKind::KwFunc},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"param", TokKind::KwParam},
      {"in", TokKind::KwIn}};
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc);
  Token Tok = makeToken(TokKind::Identifier, Loc);
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexAnnotation(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);
  if (Text == "trip")
    return makeToken(TokKind::AtTrip, Loc);
  if (Text == "cond")
    return makeToken(TokKind::AtCond, Loc);
  if (Text == "size")
    return makeToken(TokKind::AtSize, Loc);
  Diags.error(Loc, "unknown annotation '@" + Text +
                       "'. Valid: @trip, @cond, @size");
  return makeToken(TokKind::Error, Loc);
}
