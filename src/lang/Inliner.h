//===- lang/Inliner.h - Small-function inlining (section 5.3) --*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-level inlining of small functions, the paper's section-5.3 device:
/// "we alleviate our limitation of path insensitivity by inlining small
/// functions based on heuristics". Inlining a leaf helper also removes
/// the per-call task boundary from hot loops, which keeps the number of
/// cross-task transfer arcs (and hence the parametric dimensionality of
/// the partitioning problem) small.
///
/// The pass runs on the *parsed* (pre-sema) AST and substitutes by name,
/// renaming every callee-local variable to a fresh unique name.
///
/// A call site is inlined when:
///  * the callee body has at most MaxNodes AST nodes,
///  * the callee is not (mutually) recursive through inlinable calls,
///  * the callee either has no return statements (void), or exactly one
///    `return expr;` as the lexically last statement of its body,
///  * the call appears as a whole expression statement, as a declaration
///    initializer, or as the right-hand side of a plain assignment.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_INLINER_H
#define PACO_LANG_INLINER_H

#include "lang/AST.h"

namespace paco {

/// Options for the inlining pass.
struct InlineOptions {
  /// Master switch (checked by the pipeline, not by the pass itself).
  bool Enabled = true;
  /// Maximum AST node count of an inlinable callee body.
  unsigned MaxNodes = 48;
  /// Hard cap on inlined call sites (guards pathological growth).
  unsigned MaxSites = 256;
};

/// Runs the pass in place. \returns the number of call sites inlined.
unsigned inlineSmallFunctions(Program &Prog,
                              const InlineOptions &Options = {});

/// Deep copy of an expression (shared with the parser's desugaring).
ExprPtr cloneExpr(const Expr &E);

/// Deep copy of a statement tree (annotations included).
StmtPtr cloneStmt(const Stmt &S);

} // namespace paco

#endif // PACO_LANG_INLINER_H
