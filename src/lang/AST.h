//===- lang/AST.h - MiniC abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MiniC. Nodes use a Kind enum discriminator in
/// the LLVM style (no RTTI); ownership is expressed with unique_ptr and
/// the tree is immutable after semantic analysis apart from the
/// resolution fields Sema fills in (symbol links and computed types).
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_AST_H
#define PACO_LANG_AST_H

#include "lang/Token.h"

#include <cassert>
#include <memory>
#include <vector>

namespace paco {

/// MiniC value types. Pointers are one level deep; `func` is a value that
/// names a `void(void)` function, used for indirect calls (the paper's
/// Figure-1 encoder dispatch).
enum class TypeKind {
  Void,
  Int,
  Double,
  IntPtr,
  DoublePtr,
  Func,
};

/// \returns true for `int*` or `double*`.
inline bool isPointerType(TypeKind T) {
  return T == TypeKind::IntPtr || T == TypeKind::DoublePtr;
}

/// \returns the pointee of a pointer type.
inline TypeKind pointeeType(TypeKind T) {
  assert(isPointerType(T) && "not a pointer type");
  return T == TypeKind::IntPtr ? TypeKind::Int : TypeKind::Double;
}

/// \returns the pointer type to \p T.
inline TypeKind pointerTo(TypeKind T) {
  assert((T == TypeKind::Int || T == TypeKind::Double) &&
         "unsupported pointee");
  return T == TypeKind::Int ? TypeKind::IntPtr : TypeKind::DoublePtr;
}

const char *typeName(TypeKind T);

class FuncDecl;
class VarDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Expression base. Type is filled in by Sema.
class Expr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    VarRef,
    Unary,
    Binary,
    Assign,
    Call,
    Index,
    Deref,
    AddrOf,
    Ternary,
  };

  Kind getKind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  TypeKind Type = TypeKind::Void; ///< Set by Sema.

  virtual ~Expr() = default;

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  int64_t Value;
};

class FloatLitExpr : public Expr {
public:
  FloatLitExpr(double Value, SourceLoc Loc)
      : Expr(Kind::FloatLit, Loc), Value(Value) {}
  double Value;
};

/// A name reference; Sema resolves it to a variable, run-time parameter,
/// or function (for `func` values and direct calls).
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}
  std::string Name;
  VarDecl *Var = nullptr;        ///< Set by Sema when naming a variable.
  FuncDecl *Function = nullptr;  ///< Set by Sema when naming a function.
  int ParamIndex = -1;           ///< Set by Sema for run-time parameters.
};

enum class UnaryOp { Neg, Not, BitNot };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
};

enum class BinaryOp {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Gt, Le, Ge, Eq, Ne,
  LAnd, LOr,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// Assignment `lhs = rhs` where lhs is a VarRef, Index or Deref.
class AssignExpr : public Expr {
public:
  AssignExpr(ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Expr(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  ExprPtr Target;
  ExprPtr Value;
};

/// A call `callee(args)`. The callee expression is a VarRef naming either
/// a function (direct call), a `func` variable (indirect call) or a
/// builtin (io_*, malloc).
class CallExpr : public Expr {
public:
  enum class Builtin { None, IoRead, IoWrite, IoReadBuf, IoWriteBuf, Malloc };

  CallExpr(ExprPtr Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  Builtin BuiltinKind = Builtin::None; ///< Set by Sema.
};

class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
  ExprPtr Base;
  ExprPtr Index;
};

class DerefExpr : public Expr {
public:
  DerefExpr(ExprPtr Pointer, SourceLoc Loc)
      : Expr(Kind::Deref, Loc), Pointer(std::move(Pointer)) {}
  ExprPtr Pointer;
};

class AddrOfExpr : public Expr {
public:
  AddrOfExpr(ExprPtr Operand, SourceLoc Loc)
      : Expr(Kind::AddrOf, Loc), Operand(std::move(Operand)) {}
  ExprPtr Operand; ///< Must resolve to a variable (scalar or array).
};

class TernaryExpr : public Expr {
public:
  TernaryExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc)
      : Expr(Kind::Ternary, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else;
};

//===----------------------------------------------------------------------===//
// Declarations and statements
//===----------------------------------------------------------------------===//

/// A variable: global, local, or function parameter. Arrays carry a
/// constant element count.
class VarDecl {
public:
  std::string Name;
  TypeKind Type = TypeKind::Int;
  SourceLoc Loc;
  bool IsGlobal = false;
  bool IsArray = false;
  int64_t ArraySize = 0;
  /// Constant initializer values for global scalars/arrays.
  std::vector<ExprPtr> Init;
};

class Stmt {
public:
  enum class Kind {
    Block,
    DeclStmt,
    ExprStmt,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
  };

  Kind getKind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  /// @trip / @cond annotation attached to this statement (loops and ifs).
  ExprPtr TripAnnot;
  ExprPtr CondAnnot;

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt : public Stmt {
public:
  explicit BlockStmt(SourceLoc Loc) : Stmt(Kind::Block, Loc) {}
  std::vector<StmtPtr> Body;
};

/// Local variable declaration with an optional initializer. A @size
/// annotation on a malloc initializer gives its symbolic size.
class DeclStmt : public Stmt {
public:
  DeclStmt(std::unique_ptr<VarDecl> Var, ExprPtr InitExpr, SourceLoc Loc)
      : Stmt(Kind::DeclStmt, Loc), Var(std::move(Var)),
        InitExpr(std::move(InitExpr)) {}
  std::unique_ptr<VarDecl> Var;
  ExprPtr InitExpr;
  ExprPtr SizeAnnot; ///< @size(expr) for the malloc in InitExpr.
};

class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc)
      : Stmt(Kind::ExprStmt, Loc), E(std::move(E)) {}
  ExprPtr E;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr InitStmt, ExprPtr Cond, ExprPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(std::move(InitStmt)),
        Cond(std::move(Cond)), Step(std::move(Step)), Body(std::move(Body)) {}
  StmtPtr Init; ///< DeclStmt or ExprStmt; may be null.
  ExprPtr Cond; ///< May be null (infinite loop).
  ExprPtr Step; ///< May be null.
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}
  ExprPtr Value; ///< May be null.
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

class FuncDecl {
public:
  std::string Name;
  TypeKind ReturnType = TypeKind::Void;
  SourceLoc Loc;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::unique_ptr<BlockStmt> Body;
};

/// A declared run-time parameter `param int name in [lo, hi];`.
struct RuntimeParamDecl {
  std::string Name;
  int64_t Lower = 0;
  int64_t Upper = 0;
  SourceLoc Loc;
};

/// A whole translation unit.
class Program {
public:
  std::vector<RuntimeParamDecl> RuntimeParams;
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Functions;

  /// \returns the function named \p Name, or null.
  FuncDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace paco

#endif // PACO_LANG_AST_H
