//===- lang/Lexer.h - MiniC lexer ------------------------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports // and /* */ comments, decimal
/// and hexadecimal integers, floating literals, and @-prefixed annotation
/// keywords.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_LANG_LEXER_H
#define PACO_LANG_LEXER_H

#include "lang/Token.h"

#include <vector>

namespace paco {

/// Lexes a whole MiniC buffer into tokens (always terminated by Eof).
class Lexer {
public:
  Lexer(std::string Source, DiagEngine &Diags)
      : Source(std::move(Source)), Diags(Diags) {}

  /// Lexes the entire buffer. Errors are reported to the DiagEngine and
  /// produce Error tokens.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  Token makeToken(TokKind Kind, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);
  Token lexAnnotation(SourceLoc Loc);

  std::string Source;
  DiagEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace paco

#endif // PACO_LANG_LEXER_H
