//===- ir/Lower.h - AST to IR lowering -------------------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniC Program into an IRModule, consuming the
/// SymbolicInfo flow analysis to stamp every basic block and CFG edge
/// with its symbolic execution count and every malloc site with its
/// symbolic size -- the inputs of the parametric cost analysis.
///
/// Failures surface on the std::expected-based LowerResult: every fatal
/// condition (a statement the symbolic analysis left unannotated, an
/// unresolved variable slot, an expression kind lowering does not
/// handle) produces a located LowerError instead of asserting or
/// throwing, and is mirrored into the DiagEngine so lowering and pass
/// diagnostics flow through one channel.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_IR_LOWER_H
#define PACO_IR_LOWER_H

#include "ir/IR.h"
#include "lang/Symbolics.h"

#include <expected>

namespace paco {

/// A fatal lowering failure, located in the MiniC source.
struct LowerError {
  SourceLoc Loc;
  std::string Message;

  /// Renders "line:col: error: message" like a Diag.
  std::string toString() const {
    return Loc.toString() + ": error: " + Message;
  }
};

using LowerResult = std::expected<std::unique_ptr<IRModule>, LowerError>;

/// Lowers \p Prog to IR. Requires successful sema and symbolic analysis.
/// Short-circuit and ternary subexpressions are counted at their parent
/// block's frequency (a documented over-approximation of the cost model).
/// On failure the first error is returned and also recorded in \p Diags.
[[nodiscard]] LowerResult lowerProgram(const Program &Prog,
                                       const SymbolicInfo &Info,
                                       ParamSpace &Space, DiagEngine &Diags);

} // namespace paco

#endif // PACO_IR_LOWER_H
