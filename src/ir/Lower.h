//===- ir/Lower.h - AST to IR lowering -------------------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniC Program into an IRModule, consuming the
/// SymbolicInfo flow analysis to stamp every basic block and CFG edge
/// with its symbolic execution count and every malloc site with its
/// symbolic size -- the inputs of the parametric cost analysis.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_IR_LOWER_H
#define PACO_IR_LOWER_H

#include "ir/IR.h"
#include "lang/Symbolics.h"

namespace paco {

/// Lowers \p Prog to IR. Requires successful sema and symbolic analysis.
/// Short-circuit and ternary subexpressions are counted at their parent
/// block's frequency (a documented over-approximation of the cost model).
std::unique_ptr<IRModule> lowerProgram(const Program &Prog,
                                       const SymbolicInfo &Info,
                                       ParamSpace &Space, DiagEngine &Diags);

} // namespace paco

#endif // PACO_IR_LOWER_H
