//===- ir/IR.h - Quad-style control-flow-graph IR --------------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-level IR the offloading analyses and the interpreter work on:
/// functions of basic blocks of three-address instructions.
///
/// Properties relevant to the paper's algorithms:
///  * Every block ends in exactly one terminator (Br/Jmp/Call/CallInd/
///    Ret); calls terminate blocks so function calls sit on task
///    boundaries, matching the paper's task-branch definition.
///  * Each block carries its symbolic execution count (an affine function
///    of the run-time parameters), computed during lowering from the
///    SymbolicInfo flow analysis; intra-function edges carry counts too.
///  * Memory is addressed through typed abstract locations: every global,
///    local and malloc site is one location; Load/Store use a pointer
///    operand plus an element index.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_IR_IR_H
#define PACO_IR_IR_H

#include "lang/AST.h"
#include "support/LinExpr.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace paco {

/// Sentinel for "no variable / no target".
inline constexpr unsigned KNone = ~0u;

enum class Opcode : uint8_t {
  // Moves and conversions.
  Copy,
  IntToFloat,
  FloatToInt,
  // Unary.
  Neg,
  Not,
  BitNot,
  // Binary arithmetic/logic (operate on Ty).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons (result int; compare at Ty).
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  CmpEq,
  CmpNe,
  // Memory.
  AddrOfVar, ///< Dst = address of the variable named by operand A
  PtrAdd,    ///< Dst = A + B (element offset)
  Load,      ///< Dst = *(A + B)
  Store,     ///< *(A + B) = C
  Malloc,    ///< Dst = new block of A elements (site AllocSite)
  // I/O builtins (pin their task to the client).
  IoRead,     ///< Dst = one input value
  IoWrite,    ///< output value A
  IoReadBuf,  ///< read B elements into buffer A
  IoWriteBuf, ///< write B elements from buffer A
  // Terminators.
  Call,    ///< Dst? = Functions[Callee](Args...); continues at Succ0
  CallInd, ///< indirect call through func value A; continues at Succ0
  Ret,     ///< return A (optional)
  Br,      ///< if A != 0 goto Succ0 else Succ1
  Jmp,     ///< goto Succ0
};

const char *opcodeName(Opcode Op);

/// An instruction operand.
struct Operand {
  enum class Kind : uint8_t {
    None,
    ConstInt,
    ConstFloat,
    Local,   ///< Index into the enclosing function's locals.
    Global,  ///< Index into the module's globals.
    FuncRef, ///< Index of a function (func value).
    RtParam, ///< Declared run-time parameter (ParamId).
  };

  Kind K = Kind::None;
  int64_t IntVal = 0;
  double FloatVal = 0.0;
  unsigned Index = 0;

  static Operand none() { return {}; }
  static Operand constInt(int64_t V) {
    Operand O;
    O.K = Kind::ConstInt;
    O.IntVal = V;
    return O;
  }
  static Operand constFloat(double V) {
    Operand O;
    O.K = Kind::ConstFloat;
    O.FloatVal = V;
    return O;
  }
  static Operand local(unsigned I) {
    Operand O;
    O.K = Kind::Local;
    O.Index = I;
    return O;
  }
  static Operand global(unsigned I) {
    Operand O;
    O.K = Kind::Global;
    O.Index = I;
    return O;
  }
  static Operand funcRef(unsigned I) {
    Operand O;
    O.K = Kind::FuncRef;
    O.Index = I;
    return O;
  }
  static Operand rtParam(unsigned I) {
    Operand O;
    O.K = Kind::RtParam;
    O.Index = I;
    return O;
  }

  bool isNone() const { return K == Kind::None; }
};

/// One three-address instruction.
struct Instr {
  Opcode Op = Opcode::Copy;
  TypeKind Ty = TypeKind::Void; ///< Operate/result type.
  unsigned Dst = KNone;         ///< Destination local, if any.
  Operand A, B, C;
  std::vector<Operand> Args;  ///< Call arguments.
  unsigned Callee = KNone;    ///< Function index for Call.
  unsigned Succ0 = KNone;     ///< Branch target / continuation.
  unsigned Succ1 = KNone;     ///< False target for Br.
  unsigned AllocSite = KNone; ///< Malloc site id.
  /// Cost-model weight: how many workload units executing this
  /// instruction charges. Lowering emits weight 1; an optimization pass
  /// that deletes a reachable instruction folds the deleted weight into a
  /// surviving instruction of the same block, so block workloads -- and
  /// therefore every Theorem-1 capacity and simulated time -- are
  /// bit-identical whether or not the pass pipeline ran.
  unsigned Units = 1;
  SourceLoc Loc;

  bool isTerminator() const {
    switch (Op) {
    case Opcode::Call:
    case Opcode::CallInd:
    case Opcode::Ret:
    case Opcode::Br:
    case Opcode::Jmp:
      return true;
    default:
      return false;
    }
  }
};

/// A local variable slot (parameters first, then named locals and temps).
struct LocalVar {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  bool IsArray = false;
  int64_t ArraySize = 0;
  bool IsTemp = false;
};

/// A module-level variable.
struct GlobalVar {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  bool IsArray = false;
  int64_t ArraySize = 0;
  /// Constant initializers (ConstInt/ConstFloat operands).
  std::vector<Operand> Init;
};

/// A basic block: straight-line instructions plus one terminator at the
/// end, annotated with its symbolic execution count.
struct BasicBlock {
  std::vector<Instr> Instrs;
  LinExpr Count;

  const Instr &terminator() const {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block lacks a terminator");
    return Instrs.back();
  }
};

/// Static description of one dynamic allocation site.
struct AllocSiteInfo {
  LinExpr SizeElems;       ///< Elements per allocation.
  LinExpr ExecCount;       ///< How many times the site runs.
  TypeKind ElemType = TypeKind::Int;
  SourceLoc Loc;
};

class IRFunction {
public:
  std::string Name;
  TypeKind RetType = TypeKind::Void;
  unsigned NumParams = 0;
  std::vector<LocalVar> Locals;
  std::vector<BasicBlock> Blocks; ///< Blocks[0] is the entry.
  LinExpr EntryCount;
  /// Symbolic traversal counts of intra-function CFG edges.
  std::map<std::pair<unsigned, unsigned>, LinExpr> EdgeCounts;

  /// Intra-function successors of block \p B (call instructions yield
  /// their continuation; interprocedural edges are the TCFG's concern).
  std::vector<unsigned> successors(unsigned B) const;

  /// Workload units of block \p B (terminator included): the sum of the
  /// instructions' cost weights -- the per-execution workload unit of the
  /// cost model. Equals the instruction count until an optimization pass
  /// folds deleted instructions' weights into survivors.
  unsigned instructionCount(unsigned B) const {
    unsigned N = 0;
    for (const Instr &I : Blocks[B].Instrs)
      N += I.Units;
    return N;
  }
};

class IRModule {
public:
  std::vector<GlobalVar> Globals;
  std::vector<std::unique_ptr<IRFunction>> Functions;
  std::vector<AllocSiteInfo> AllocSites;
  unsigned MainIndex = KNone;

  /// \returns the index of function \p Name or KNone.
  unsigned findFunction(const std::string &Name) const;

  /// Renders the whole module as text (for tests and debugging).
  std::string dump(const ParamSpace &Space) const;
};

} // namespace paco

#endif // PACO_IR_IR_H
