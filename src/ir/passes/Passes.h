//===- ir/passes/Passes.h - Optimizing IR pass pipeline --------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing pass pipeline that runs between lowering and the
/// memory/TCFG stages. Every pass is *cost-neutral by construction*: a
/// transformation is only applied when it provably leaves the per-task
/// data-access summaries, the points-to solution, the task formation and
/// every block's symbolic workload (count x units) bit-identical, so the
/// Theorem-1 capacities -- and therefore the Table-4 cut costs and every
/// simulated time -- do not depend on whether the pipeline ran.
///
/// The neutrality calculus the instruction passes obey:
///  * A location whose accesses all sit in one basic block belongs to a
///    single task, and single-task data contributes no nodes to the flow
///    network at all; such locations may gain or lose accesses freely.
///  * Removing a read is neutral when an earlier read or write of the
///    same location survives in the block: within-block write coverage is
///    monotone, so the earlier access subsumes the removed one's flag
///    contribution.
///  * Only AddrOfVar/Malloc/Copy/PtrAdd/Load/Store/Call/Ret feed the
///    Andersen solver; passes never delete or rewrite a points-to
///    constraint unless it provably adds nothing to the solution.
///
/// Deleted instructions fold their cost-model weight (Instr::Units) into
/// a surviving instruction of the same block, keeping block workloads
/// exact rather than approximately equal.
///
/// The CostSimplify pass is the one pass that changes analysis inputs on
/// purpose -- value-preservingly: monomial dimensions that co-occur in a
/// fixed proportional ratio across *all* cost expressions merge into one
/// composite ParamSpace dimension, shrinking the parametric dimension of
/// the flag slices (this is what turns susan's sampled Approximate
/// regions into exact certified ones).
///
//===----------------------------------------------------------------------===//

#ifndef PACO_IR_PASSES_PASSES_H
#define PACO_IR_PASSES_PASSES_H

#include "ir/IR.h"

#include <optional>
#include <string>

namespace paco {

/// Configuration of one pipeline run.
struct PassOptions {
  /// Master switch; when false runPassPipeline is a no-op (the
  /// `--no-opt` escape hatch).
  bool Enabled = true;
  /// Re-verify the module after every individual pass, failing the
  /// pipeline on the first broken invariant.
  bool VerifyEachPass = false;
  /// Upper bound on instruction-pass fixpoint rounds.
  unsigned MaxFixpointIterations = 16;
  /// Run the cost-expression simplification (monomial merge) stage.
  bool CostSimplify = true;
};

/// Aggregate statistics of one pipeline run (also mirrored into the
/// obs StatsRegistry under ir.pass.*).
struct PassStats {
  unsigned FixpointIterations = 0;
  unsigned ConstFolded = 0;       ///< Instructions folded to constants.
  unsigned ConstOperands = 0;     ///< Operands replaced by constants.
  unsigned CSEReplaced = 0;       ///< Instructions rewritten to copies.
  unsigned CopiesPropagated = 0;  ///< Operands forwarded through copies.
  unsigned InstrsRemoved = 0;     ///< Dead instructions deleted.
  unsigned BlocksRemoved = 0;     ///< Unreachable blocks deleted.
  unsigned BlocksMerged = 0;      ///< Forwarding blocks merged away.
  unsigned MonomialsMerged = 0;   ///< Cost monomials folded into composites.
  unsigned MergedDims = 0;        ///< Composite dimensions created.
  unsigned InstrsBefore = 0, InstrsAfter = 0;
  unsigned BlocksBefore = 0, BlocksAfter = 0;
  unsigned CostTermsBefore = 0, CostTermsAfter = 0;
};

/// Structural invariant check: every block non-empty with exactly one
/// trailing terminator, all successor/operand/callee/alloc-site indices
/// in range, all units positive, all edge-count keys valid.
/// \returns a description of the first violation, or nullopt when the
/// module is well-formed.
std::optional<std::string> verifyModule(const IRModule &M);

/// Runs the pipeline in place: [ConstProp, CSE, Cleanup, DCE] to a
/// fixpoint, then CostSimplify once. \returns the run's statistics, or
/// a verifier message when \p Options.VerifyEachPass catches a broken
/// module (the module may be partially transformed in that case).
/// On entry the module must pass verifyModule.
std::optional<PassStats> runPassPipeline(IRModule &M, ParamSpace &Space,
                                         const PassOptions &Options,
                                         std::string *ErrorOut = nullptr);

} // namespace paco

#endif // PACO_IR_PASSES_PASSES_H
