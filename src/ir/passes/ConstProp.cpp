//===- ir/passes/ConstProp.cpp - Local constant propagation + folding -----===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-block constant tracking and folding. Folding mirrors the
/// interpreter's arithmetic bit for bit (wrapping int64, IEEE doubles,
/// the same shift masking and division guards), so a folded program
/// computes exactly what the unfolded one would.
///
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

#include <cstdint>
#include <optional>

using namespace paco;
using namespace paco::passes;

namespace {

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

bool isInt(const Operand &O) { return O.K == Operand::Kind::ConstInt; }
bool isFloat(const Operand &O) { return O.K == Operand::Kind::ConstFloat; }

/// Three-way comparison matching Machine::execArith exactly (NaN
/// compares "equal" there because both orderings fail).
int cmp3(double A, double B) { return A < B ? -1 : (A > B ? 1 : 0); }
int cmp3(int64_t A, int64_t B) { return A < B ? -1 : (A > B ? 1 : 0); }

std::optional<Operand> applyCmp(Opcode Op, int Cmp) {
  bool R = false;
  switch (Op) {
  case Opcode::CmpLt: R = Cmp < 0; break;
  case Opcode::CmpLe: R = Cmp <= 0; break;
  case Opcode::CmpGt: R = Cmp > 0; break;
  case Opcode::CmpGe: R = Cmp >= 0; break;
  case Opcode::CmpEq: R = Cmp == 0; break;
  case Opcode::CmpNe: R = Cmp != 0; break;
  default: return std::nullopt;
  }
  return Operand::constInt(R);
}

/// Evaluates a pure-arith instruction whose read operands are constants.
/// Returns nullopt when the operation might trap or the operand kinds do
/// not match the operating type (then the instruction is left alone).
std::optional<Operand> foldInstr(const Instr &I) {
  bool IsD = I.Ty == TypeKind::Double;
  switch (I.Op) {
  case Opcode::IntToFloat:
    if (!isInt(I.A))
      return std::nullopt;
    return Operand::constFloat(static_cast<double>(I.A.IntVal));
  case Opcode::FloatToInt:
    if (!isFloat(I.A))
      return std::nullopt;
    return Operand::constInt(static_cast<int64_t>(I.A.FloatVal));
  case Opcode::Neg:
    if (IsD)
      return isFloat(I.A) ? std::optional(Operand::constFloat(-I.A.FloatVal))
                          : std::nullopt;
    return isInt(I.A) ? std::optional(Operand::constInt(wrapNeg(I.A.IntVal)))
                      : std::nullopt;
  case Opcode::Not:
    if (!isInt(I.A))
      return std::nullopt;
    return Operand::constInt(I.A.IntVal == 0);
  case Opcode::BitNot:
    if (!isInt(I.A))
      return std::nullopt;
    return Operand::constInt(~I.A.IntVal);
  default:
    break;
  }

  // Binary operations and comparisons.
  if (IsD) {
    if (!isFloat(I.A) || !isFloat(I.B))
      return std::nullopt;
    double A = I.A.FloatVal, B = I.B.FloatVal;
    switch (I.Op) {
    case Opcode::Add: return Operand::constFloat(A + B);
    case Opcode::Sub: return Operand::constFloat(A - B);
    case Opcode::Mul: return Operand::constFloat(A * B);
    case Opcode::Div: return Operand::constFloat(B == 0.0 ? 0.0 : A / B);
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
      return applyCmp(I.Op, cmp3(A, B));
    default:
      return std::nullopt;
    }
  }
  if (I.Ty != TypeKind::Int || !isInt(I.A) || !isInt(I.B))
    return std::nullopt;
  int64_t A = I.A.IntVal, B = I.B.IntVal;
  switch (I.Op) {
  case Opcode::Add: return Operand::constInt(wrapAdd(A, B));
  case Opcode::Sub: return Operand::constInt(wrapSub(A, B));
  case Opcode::Mul: return Operand::constInt(wrapMul(A, B));
  case Opcode::Div:
    if (B == 0 || (B == -1 && A == INT64_MIN))
      return std::nullopt; // keep the run-time failure observable
    return Operand::constInt(A / B);
  case Opcode::Rem:
    if (B == 0 || (B == -1 && A == INT64_MIN))
      return std::nullopt;
    return Operand::constInt(A % B);
  case Opcode::And: return Operand::constInt(A & B);
  case Opcode::Or:  return Operand::constInt(A | B);
  case Opcode::Xor: return Operand::constInt(A ^ B);
  case Opcode::Shl:
    return Operand::constInt(static_cast<int64_t>(
        static_cast<uint64_t>(A) << (B & 63)));
  case Opcode::Shr: return Operand::constInt(A >> (B & 63));
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
    return applyCmp(I.Op, cmp3(A, B));
  default:
    return std::nullopt;
  }
}

} // namespace

bool passes::runConstProp(IRFunction &F, const FuncInfo &Info,
                          PassStats &Stats) {
  bool Changed = false;
  std::vector<std::optional<Operand>> Known(F.Locals.size());
  for (BasicBlock &B : F.Blocks) {
    for (auto &K : Known)
      K.reset();
    for (unsigned P = 0; P != B.Instrs.size(); ++P) {
      Instr &I = B.Instrs[P];
      // 1. Substitute known constants into eligible operand slots.
      forEachSubstitutableRead(I, [&](Operand &O, bool PtrConstraint) {
        if (O.K != Operand::Kind::Local || !Known[O.Index])
          return;
        if (PtrConstraint && !Info.NoPtrDefs[O.Index])
          return;
        if (!canDropRead(Info, B, P, O))
          return;
        O = *Known[O.Index];
        ++Stats.ConstOperands;
        Changed = true;
      });
      // 2. Fold fully-constant pure arithmetic into a constant copy.
      if (isPureArith(I.Op)) {
        if (std::optional<Operand> R = foldInstr(I)) {
          I.Op = Opcode::Copy;
          I.A = *R;
          I.B = Operand::none();
          I.C = Operand::none();
          ++Stats.ConstFolded;
          Changed = true;
        }
      }
      // 3. Track the value the destination now holds.
      if (I.Dst != KNone) {
        Known[I.Dst].reset();
        if (I.Op == Opcode::Copy && !Info.AddrTaken[I.Dst] &&
            ((I.Ty == TypeKind::Int && isInt(I.A)) ||
             (I.Ty == TypeKind::Double && isFloat(I.A))))
          Known[I.Dst] = I.A;
      }
    }
  }
  return Changed;
}
