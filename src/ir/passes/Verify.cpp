//===- ir/passes/Verify.cpp - Structural IR invariants --------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/passes/Passes.h"

#include <sstream>

using namespace paco;

namespace {

class Verifier {
public:
  explicit Verifier(const IRModule &M) : M(M) {}

  std::optional<std::string> run() {
    if (M.MainIndex != KNone && M.MainIndex >= M.Functions.size())
      return fail("module", "MainIndex out of range");
    for (unsigned F = 0; F != M.Functions.size(); ++F)
      if (auto Err = checkFunction(*M.Functions[F]))
        return Err;
    return std::nullopt;
  }

private:
  std::optional<std::string> fail(const std::string &Where,
                                  const std::string &What) const {
    return Where + ": " + What;
  }

  std::optional<std::string> checkFunction(const IRFunction &F) const {
    if (F.Blocks.empty())
      return fail(F.Name, "function has no blocks");
    if (F.NumParams > F.Locals.size())
      return fail(F.Name, "more parameters than locals");
    for (unsigned B = 0; B != F.Blocks.size(); ++B)
      if (auto Err = checkBlock(F, B))
        return Err;
    for (const auto &[Edge, Count] : F.EdgeCounts) {
      (void)Count;
      if (Edge.first >= F.Blocks.size() || Edge.second >= F.Blocks.size())
        return fail(F.Name, "edge count references a deleted block");
    }
    return std::nullopt;
  }

  std::optional<std::string> checkBlock(const IRFunction &F,
                                        unsigned B) const {
    std::ostringstream Tag;
    Tag << F.Name << ".bb" << B;
    const BasicBlock &Block = F.Blocks[B];
    if (Block.Instrs.empty())
      return fail(Tag.str(), "empty block");
    for (unsigned P = 0; P != Block.Instrs.size(); ++P) {
      const Instr &I = Block.Instrs[P];
      bool IsLast = P + 1 == Block.Instrs.size();
      if (I.isTerminator() != IsLast)
        return fail(Tag.str(), IsLast ? "block lacks a terminator"
                                      : "terminator before block end");
      if (auto Err = checkInstr(F, Tag.str(), I))
        return Err;
    }
    return std::nullopt;
  }

  std::optional<std::string> checkOperand(const IRFunction &F,
                                          const std::string &Where,
                                          const Operand &O) const {
    switch (O.K) {
    case Operand::Kind::Local:
      if (O.Index >= F.Locals.size())
        return fail(Where, "local operand out of range");
      return std::nullopt;
    case Operand::Kind::Global:
      if (O.Index >= M.Globals.size())
        return fail(Where, "global operand out of range");
      return std::nullopt;
    case Operand::Kind::FuncRef:
      if (O.Index >= M.Functions.size())
        return fail(Where, "function reference out of range");
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }

  std::optional<std::string> checkInstr(const IRFunction &F,
                                        const std::string &Where,
                                        const Instr &I) const {
    if (I.Units == 0)
      return fail(Where, "instruction with zero cost weight");
    for (const Operand *O : {&I.A, &I.B, &I.C})
      if (auto Err = checkOperand(F, Where, *O))
        return Err;
    for (const Operand &O : I.Args)
      if (auto Err = checkOperand(F, Where, O))
        return Err;
    if (I.Dst != KNone && I.Dst >= F.Locals.size())
      return fail(Where, "destination local out of range");
    auto checkSucc = [&](unsigned S) { return S < F.Blocks.size(); };
    switch (I.Op) {
    case Opcode::Call:
      if (I.Callee >= M.Functions.size())
        return fail(Where, "callee out of range");
      if (!checkSucc(I.Succ0))
        return fail(Where, "call continuation out of range");
      break;
    case Opcode::CallInd:
      if (!checkSucc(I.Succ0))
        return fail(Where, "call continuation out of range");
      break;
    case Opcode::Br:
      if (!checkSucc(I.Succ0) || !checkSucc(I.Succ1))
        return fail(Where, "branch target out of range");
      break;
    case Opcode::Jmp:
      if (!checkSucc(I.Succ0))
        return fail(Where, "jump target out of range");
      break;
    case Opcode::Malloc:
      if (I.AllocSite >= M.AllocSites.size())
        return fail(Where, "allocation site out of range");
      break;
    default:
      break;
    }
    return std::nullopt;
  }

  const IRModule &M;
};

} // namespace

std::optional<std::string> paco::verifyModule(const IRModule &M) {
  return Verifier(M).run();
}
