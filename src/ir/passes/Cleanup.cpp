//===- ir/passes/Cleanup.cpp - Copy propagation and block cleanup ---------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Redundant-copy and control-flow cleanup: forwards copies within a
/// block, deletes self-copies, and merges single-predecessor forwarding
/// blocks (a lone terminator with no data accesses) into their
/// predecessor when both blocks carry the same symbolic execution
/// count, so the merged workload -- and the task formation, which never
/// makes such a block a header -- is unchanged.
///
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

#include <optional>

using namespace paco;
using namespace paco::passes;

namespace {

/// What a local was last copied from, with enough versioning to know
/// the source still holds that value.
struct CopySource {
  Operand Src;
  unsigned SrcVersion = 0; ///< Version of Src's local at record time.
};

bool propagateCopies(IRFunction &F, const FuncInfo &Info, PassStats &Stats) {
  bool Changed = false;
  std::vector<unsigned> Version(F.Locals.size(), 0);
  std::vector<std::optional<CopySource>> CopyOf(F.Locals.size());
  for (BasicBlock &B : F.Blocks) {
    std::fill(Version.begin(), Version.end(), 0u);
    for (auto &C : CopyOf)
      C.reset();
    for (unsigned P = 0; P != B.Instrs.size(); ++P) {
      Instr &I = B.Instrs[P];
      forEachSubstitutableRead(I, [&](Operand &O, bool PtrConstraint) {
        if (O.K != Operand::Kind::Local || !CopyOf[O.Index])
          return;
        const CopySource &CS = *CopyOf[O.Index];
        if (CS.Src.K == Operand::Kind::Local &&
            Version[CS.Src.Index] != CS.SrcVersion)
          return; // source re-defined since the copy
        if (PtrConstraint && !Info.NoPtrDefs[O.Index])
          return;
        if (CS.Src.K == Operand::Kind::Local) {
          if (PtrConstraint && !Info.NoPtrDefs[CS.Src.Index])
            return;
          if (!canAddRead(Info, B, P, CS.Src.Index))
            return;
        }
        if (!canDropRead(Info, B, P, O))
          return;
        O = CS.Src;
        ++Stats.CopiesPropagated;
        Changed = true;
      });
      if (I.Dst != KNone) {
        ++Version[I.Dst];
        CopyOf[I.Dst].reset();
        if (I.Op == Opcode::Copy && !Info.AddrTaken[I.Dst]) {
          bool Trackable =
              I.A.K == Operand::Kind::ConstInt ||
              I.A.K == Operand::Kind::ConstFloat ||
              I.A.K == Operand::Kind::RtParam ||
              (I.A.K == Operand::Kind::Local && I.A.Index != I.Dst &&
               !Info.AddrTaken[I.A.Index]);
          if (Trackable)
            CopyOf[I.Dst] = CopySource{
                I.A, I.A.K == Operand::Kind::Local ? Version[I.A.Index] : 0};
        }
      }
    }
  }
  return Changed;
}

bool removeSelfCopies(IRFunction &F, const FuncInfo &Info, PassStats &Stats) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    bool Removed = true;
    while (Removed) {
      Removed = false;
      for (unsigned P = 0; P + 1 < B.Instrs.size(); ++P) {
        const Instr &I = B.Instrs[P];
        if (I.Op != Opcode::Copy || I.Dst == KNone ||
            I.A.K != Operand::Kind::Local || I.A.Index != I.Dst)
          continue;
        if (!canDropRead(Info, B, P, I.A))
          continue;
        // Dropping the write needs the location invisible or an earlier
        // surviving write in the block.
        bool WriteOK = Info.BlockLocal[I.Dst];
        for (unsigned Q = 0; !WriteOK && Q != P; ++Q)
          WriteOK = B.Instrs[Q].Dst != KNone && B.Instrs[Q].Dst == I.Dst;
        if (!WriteOK)
          continue;
        eraseFoldingUnits(B, P);
        ++Stats.InstrsRemoved;
        Changed = true;
        Removed = true;
        break;
      }
    }
  }
  return Changed;
}

/// True when \p T is a terminator carrying no data accesses.
bool isAccessFreeTerminator(const Instr &T) {
  switch (T.Op) {
  case Opcode::Jmp:
    return true;
  case Opcode::Br:
    return operandReadIsFree(T.A);
  case Opcode::Ret:
    return T.A.isNone();
  default:
    return false;
  }
}

bool mergeForwardingBlocks(IRFunction &F, PassStats &Stats) {
  bool Changed = false;
  bool Merged = true;
  while (Merged) {
    Merged = false;
    std::vector<unsigned> Preds(F.Blocks.size(), 0);
    for (unsigned B = 0; B != F.Blocks.size(); ++B)
      for (unsigned S : F.successors(B))
        ++Preds[S];
    for (unsigned A = 0; A != F.Blocks.size(); ++A) {
      Instr &Term = F.Blocks[A].Instrs.back();
      if (Term.Op != Opcode::Jmp)
        continue;
      unsigned T = Term.Succ0;
      if (T == A || T == 0 || Preds[T] != 1)
        continue;
      const BasicBlock &BT = F.Blocks[T];
      if (BT.Instrs.size() != 1 || !isAccessFreeTerminator(BT.Instrs.back()))
        continue;
      const Instr &TT = BT.Instrs.back();
      if (TT.Succ0 == T || TT.Succ1 == T)
        continue; // self-loop
      // The merged block executes with A's count; only identical counts
      // keep the symbolic workload bit-identical.
      if (F.Blocks[A].Count != BT.Count)
        continue;
      Instr NewTerm = TT;
      NewTerm.Units += Term.Units;
      F.Blocks[A].Instrs.back() = NewTerm;
      F.EdgeCounts.erase({A, T});
      for (unsigned S : {NewTerm.Succ0, NewTerm.Succ1}) {
        if (S == KNone)
          continue;
        auto It = F.EdgeCounts.find({T, S});
        if (It != F.EdgeCounts.end()) {
          F.EdgeCounts.emplace(std::make_pair(A, S), std::move(It->second));
          F.EdgeCounts.erase(It);
        }
      }
      std::vector<bool> Dead(F.Blocks.size(), false);
      Dead[T] = true;
      removeBlocks(F, Dead);
      ++Stats.BlocksMerged;
      Changed = true;
      Merged = true;
      break; // indices shifted; rescan from a fresh pred count
    }
  }
  return Changed;
}

} // namespace

bool passes::runCleanup(IRFunction &F, const FuncInfo &Info,
                        PassStats &Stats) {
  bool Changed = propagateCopies(F, Info, Stats);
  Changed |= removeSelfCopies(F, Info, Stats);
  Changed |= mergeForwardingBlocks(F, Stats);
  return Changed;
}
