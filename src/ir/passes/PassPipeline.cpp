//===- ir/passes/PassPipeline.cpp - Fixpoint pass driver ------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

#include "obs/Stats.h"
#include "obs/Trace.h"

using namespace paco;
using namespace paco::passes;

namespace {

unsigned countInstrs(const IRModule &M) {
  unsigned N = 0;
  for (const auto &F : M.Functions)
    for (const BasicBlock &B : F->Blocks)
      N += static_cast<unsigned>(B.Instrs.size());
  return N;
}

unsigned countBlocks(const IRModule &M) {
  unsigned N = 0;
  for (const auto &F : M.Functions)
    N += static_cast<unsigned>(F->Blocks.size());
  return N;
}

unsigned countCostTerms(const IRModule &M) {
  unsigned N = 0;
  auto add = [&N](const LinExpr &E) {
    N += static_cast<unsigned>(E.terms().size());
  };
  for (const auto &F : M.Functions) {
    add(F->EntryCount);
    for (const BasicBlock &B : F->Blocks)
      add(B.Count);
    for (const auto &[Edge, Count] : F->EdgeCounts) {
      (void)Edge;
      add(Count);
    }
  }
  for (const AllocSiteInfo &S : M.AllocSites) {
    add(S.SizeElems);
    add(S.ExecCount);
  }
  return N;
}

} // namespace

std::optional<PassStats> paco::runPassPipeline(IRModule &M, ParamSpace &Space,
                                               const PassOptions &Options,
                                               std::string *ErrorOut) {
  PassStats Stats;
  Stats.InstrsBefore = Stats.InstrsAfter = countInstrs(M);
  Stats.BlocksBefore = Stats.BlocksAfter = countBlocks(M);
  Stats.CostTermsBefore = Stats.CostTermsAfter = countCostTerms(M);
  if (!Options.Enabled)
    return Stats;
  obs::ScopedSpan Span("ir.opt", "ir");

  auto verified = [&](const char *Pass) {
    if (!Options.VerifyEachPass)
      return true;
    if (std::optional<std::string> Err = verifyModule(M)) {
      if (ErrorOut)
        *ErrorOut = std::string("after ") + Pass + ": " + *Err;
      return false;
    }
    return true;
  };

  struct Stage {
    const char *Name;
    const char *SpanName;
    bool (*Run)(IRFunction &, const FuncInfo &, PassStats &);
  };
  static constexpr Stage Stages[] = {
      {"constprop", "ir.opt.constprop", runConstProp},
      {"cse", "ir.opt.cse", runCSE},
      {"cleanup", "ir.opt.cleanup", runCleanup},
      {"dce", "ir.opt.dce", runDCE},
  };

  bool Changed = true;
  while (Changed && Stats.FixpointIterations < Options.MaxFixpointIterations) {
    Changed = false;
    ++Stats.FixpointIterations;
    for (const Stage &S : Stages) {
      obs::ScopedSpan StageSpan(S.SpanName, "ir");
      for (auto &F : M.Functions) {
        FuncInfo Info;
        Info.compute(*F);
        Changed |= S.Run(*F, Info, Stats);
      }
      if (!verified(S.Name))
        return std::nullopt;
    }
  }

  if (Options.CostSimplify) {
    obs::ScopedSpan StageSpan("ir.opt.cost_simplify", "ir");
    runCostSimplify(M, Space, Stats);
    if (!verified("cost_simplify"))
      return std::nullopt;
  }

  Stats.InstrsAfter = countInstrs(M);
  Stats.BlocksAfter = countBlocks(M);
  Stats.CostTermsAfter = countCostTerms(M);

  auto &Registry = obs::StatsRegistry::global();
  Registry.counter("ir.pass.fixpoint_iterations")
      .add(Stats.FixpointIterations);
  Registry.counter("ir.pass.constprop.folded").add(Stats.ConstFolded);
  Registry.counter("ir.pass.constprop.operands").add(Stats.ConstOperands);
  Registry.counter("ir.pass.cse.replaced").add(Stats.CSEReplaced);
  Registry.counter("ir.pass.cleanup.copies_propagated")
      .add(Stats.CopiesPropagated);
  Registry.counter("ir.pass.cleanup.blocks_merged").add(Stats.BlocksMerged);
  Registry.counter("ir.pass.dce.removed_instrs").add(Stats.InstrsRemoved);
  Registry.counter("ir.pass.dce.removed_blocks").add(Stats.BlocksRemoved);
  Registry.counter("ir.pass.cost_simplify.monomials_merged")
      .add(Stats.MonomialsMerged);
  Registry.counter("ir.pass.cost_simplify.merged_dims")
      .add(Stats.MergedDims);
  Span.arg("instrs_before", Stats.InstrsBefore);
  Span.arg("instrs_after", Stats.InstrsAfter);
  Span.arg("cost_terms_before", Stats.CostTermsBefore);
  Span.arg("cost_terms_after", Stats.CostTermsAfter);
  return Stats;
}
