//===- ir/passes/CostSimplify.cpp - Cost-expression monomial merging ------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalizes the module's cost expressions (block and edge counts,
/// entry counts, allocation-site sizes and trip counts) by merging
/// monomial dimensions that always co-occur in a fixed proportional
/// ratio into one composite ParamSpace dimension.
///
/// Each monomial term splits into its flag part (0/1-bounded base
/// parameters, the dimensions the parametric solver slices on) and its
/// residual. Two residuals whose coefficient columns over all
/// (expression, flag-part) observations are parallel are merged: the
/// family sum(a_i * F * R_i) rewrites to alpha * F * C with
/// C = sum(w_i * R_i) interned as a Kind::Merged parameter. The rewrite
/// is value-preserving by construction -- extendPoint fills the merged
/// slot with exactly that weighted sum -- so every capacity evaluates
/// identically at every parameter point, while the number of distinct
/// dimensions a flag slice measures drops. That drop is what moves
/// susan's widest slices back under ParametricOptions::MaxExactDims,
/// flipping its region discovery from sampled (Approximate) to the
/// exact certified frontier.
///
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace paco;
using namespace paco::passes;

namespace {

/// One decomposed cost term: where it lives and how it factors.
struct TermObs {
  Rational Coeff;
  ParamId OrigId = 0; ///< The monomial the expression currently holds.
};

/// Observation key: (expression index, sorted flag factors).
using ObsKey = std::pair<unsigned, std::vector<ParamId>>;

std::string ratKey(const Rational &R) {
  return R.numerator().toString() + "/" + R.denominator().toString();
}

BigInt lcm(const BigInt &A, const BigInt &B) {
  BigInt G = BigInt::gcd(A, B);
  return (A / G) * B;
}

} // namespace

bool passes::runCostSimplify(IRModule &M, ParamSpace &Space,
                             PassStats &Stats) {
  // 1. Gather every cost-bearing expression.
  std::vector<LinExpr *> Exprs;
  for (auto &F : M.Functions) {
    Exprs.push_back(&F->EntryCount);
    for (BasicBlock &B : F->Blocks)
      Exprs.push_back(&B.Count);
    for (auto &[Edge, Count] : F->EdgeCounts) {
      (void)Edge;
      Exprs.push_back(&Count);
    }
  }
  for (AllocSiteInfo &S : M.AllocSites) {
    Exprs.push_back(&S.SizeElems);
    Exprs.push_back(&S.ExecCount);
  }

  auto isFlag = [&Space](ParamId P) {
    return Space.kind(P) == ParamSpace::Kind::Base &&
           Space.lower(P).isZero() && Space.upper(P).isOne();
  };

  // 2. Decompose terms into (flag part, residual) and collect each
  // residual's coefficient column over all observations.
  std::map<ParamId, std::map<ObsKey, TermObs>> Columns;
  for (unsigned E = 0; E != Exprs.size(); ++E) {
    for (const auto &[Id, Coeff] : Exprs[E]->terms()) {
      std::vector<ParamId> Flags, Residual;
      bool Mergeable = true;
      for (ParamId F : Space.factors(Id)) {
        if (Space.isMerged(F)) {
          Mergeable = false; // already composite: idempotence
          break;
        }
        (isFlag(F) ? Flags : Residual).push_back(F);
      }
      if (!Mergeable || Residual.empty())
        continue;
      std::sort(Flags.begin(), Flags.end());
      ParamId RId = Residual.size() == 1 ? Residual[0]
                                         : Space.internMonomial(Residual);
      TermObs &Obs = Columns[RId][{E, Flags}];
      Obs.Coeff += Coeff;
      Obs.OrigId = Id;
    }
  }

  // 3. Group residuals whose columns are parallel (same support, same
  // ratios after normalizing by the first coefficient).
  struct Member {
    ParamId RId;
    Rational Kappa; ///< First-observation coefficient (the raw weight).
  };
  std::map<std::string, std::vector<Member>> Groups;
  for (const auto &[RId, Col] : Columns) {
    if (Col.empty())
      continue;
    const Rational &Kappa = Col.begin()->second.Coeff;
    if (Kappa.isZero())
      continue;
    std::ostringstream Key;
    for (const auto &[K, Obs] : Col) {
      Key << K.first << "[";
      for (ParamId F : K.second)
        Key << F << ",";
      Key << "]=" << ratKey(Obs.Coeff / Kappa) << ";";
    }
    Groups[Key.str()].push_back({RId, Kappa});
  }

  // 4. Merge every group of at least two proportional residuals.
  bool Changed = false;
  for (const auto &[Key, Members] : Groups) {
    (void)Key;
    if (Members.size() < 2)
      continue;
    // Integer weights proportional to the kappas.
    BigInt Denom(1);
    for (const Member &Mem : Members)
      Denom = lcm(Denom, Mem.Kappa.denominator());
    std::vector<ParamSpace::MergedTerm> Terms;
    for (const Member &Mem : Members)
      Terms.emplace_back(Mem.RId, Mem.Kappa.numerator() *
                                      (Denom / Mem.Kappa.denominator()));
    std::vector<ParamSpace::MergedTerm> Canonical;
    ParamId C = Space.internMerged(Terms, &Canonical);
    ++Stats.MergedDims;

    // alpha per observation: the reference member's coefficient divided
    // by its canonical weight (consistent across members by
    // construction of the group).
    BigInt RefW;
    for (const auto &[MId, W] : Canonical)
      if (MId == Members.front().RId)
        RefW = W;
    assert(!RefW.isZero() && "reference member lost in canonicalization");

    const auto &RefCol = Columns[Members.front().RId];
    for (const auto &[K, RefObs] : RefCol) {
      Rational Alpha = RefObs.Coeff / Rational(RefW);
      LinExpr &Expr = *Exprs[K.first];
      // Remove the member terms of this observation...
      for (const Member &Mem : Members) {
        const TermObs &Obs = Columns[Mem.RId].at(K);
        Expr.addTerm(Obs.OrigId, -Obs.Coeff);
        ++Stats.MonomialsMerged;
      }
      --Stats.MonomialsMerged; // net elimination is members-1 per slot
      // ...and add the composite back.
      std::vector<ParamId> NewFactors = K.second;
      NewFactors.push_back(C);
      ParamId NewId =
          NewFactors.size() == 1 ? C : Space.internMonomial(NewFactors);
      Expr.addTerm(NewId, Alpha);
    }
    Changed = true;
  }
  return Changed;
}
