//===- ir/passes/CSE.cpp - Local common-subexpression elimination ---------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local value numbering: within a block, a pure arithmetic instruction
/// recomputing an expression an earlier instruction already produced is
/// rewritten into a copy from that instruction's destination. The
/// representative must be a block-local, pointer-free temp so the new
/// copy neither changes any task's access flags nor adds a meaningful
/// points-to constraint.
///
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

#include <map>
#include <sstream>

using namespace paco;
using namespace paco::passes;

namespace {

/// Value-numbering state of one block walk.
struct BlockNumbering {
  /// Current value number per local; 0 = unknown/initial.
  std::vector<unsigned> VN;
  unsigned NextVN = 1;
  /// Bumped by instructions that may write memory through pointers;
  /// versions global operands (and is folded into address-taken locals
  /// by bumping their VN directly).
  unsigned MemEpoch = 0;

  explicit BlockNumbering(size_t NumLocals) : VN(NumLocals, 0) {}

  void defineLocal(unsigned L) { VN[L] = NextVN++; }
};

/// Serialized operand identity under the current numbering, or nullopt
/// for operand kinds CSE does not handle.
std::optional<std::string> operandKey(const Operand &O,
                                      const BlockNumbering &N) {
  std::ostringstream S;
  switch (O.K) {
  case Operand::Kind::None:
    S << "_";
    break;
  case Operand::Kind::ConstInt:
    S << "i" << O.IntVal;
    break;
  case Operand::Kind::ConstFloat: {
    // Bit pattern, so -0.0 and NaN payloads key distinctly.
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(O.FloatVal));
    __builtin_memcpy(&Bits, &O.FloatVal, sizeof(Bits));
    S << "f" << Bits;
    break;
  }
  case Operand::Kind::RtParam:
    S << "p" << O.Index;
    break;
  case Operand::Kind::Local:
    S << "l" << O.Index << "v" << N.VN[O.Index];
    break;
  case Operand::Kind::Global:
    S << "g" << O.Index << "e" << N.MemEpoch;
    break;
  default:
    return std::nullopt;
  }
  return S.str();
}

bool mayWriteThroughPointer(const Instr &I) {
  return I.Op == Opcode::Store || I.Op == Opcode::IoReadBuf;
}

} // namespace

bool passes::runCSE(IRFunction &F, const FuncInfo &Info, PassStats &Stats) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    BlockNumbering N(F.Locals.size());
    // Expression key -> (representative local, its VN at definition).
    std::map<std::string, std::pair<unsigned, unsigned>> Exprs;
    for (unsigned P = 0; P != B.Instrs.size(); ++P) {
      Instr &I = B.Instrs[P];
      if (isPureArith(I.Op) && I.Dst != KNone &&
          (I.Ty == TypeKind::Int || I.Ty == TypeKind::Double)) {
        std::ostringstream KeyS;
        KeyS << static_cast<int>(I.Op) << "/" << static_cast<int>(I.Ty);
        bool Keyable = true;
        for (const Operand *O : {&I.A, &I.B, &I.C}) {
          auto K = operandKey(*O, N);
          if (!K) {
            Keyable = false;
            break;
          }
          KeyS << ":" << *K;
        }
        if (Keyable) {
          std::string Key = KeyS.str();
          auto It = Exprs.find(Key);
          if (It != Exprs.end()) {
            auto [R, DefVN] = It->second;
            // The representative must still hold the value, be invisible
            // to the partition problem, and provably pointer-free; every
            // dropped operand read needs an earlier witness.
            bool CanRewrite = R != I.Dst && N.VN[R] == DefVN &&
                              Info.BlockLocal[R] && Info.NoPtrDefs[R] &&
                              canAddRead(Info, B, P, R);
            if (CanRewrite)
              for (const Operand *O : {&I.A, &I.B, &I.C})
                CanRewrite &= canDropRead(Info, B, P, *O);
            if (CanRewrite) {
              I.Op = Opcode::Copy;
              I.A = Operand::local(R);
              I.B = Operand::none();
              I.C = Operand::none();
              ++Stats.CSEReplaced;
              Changed = true;
              // Fall through to the generic definition bookkeeping.
            }
          } else {
            N.defineLocal(I.Dst);
            Exprs.emplace(std::move(Key),
                          std::make_pair(I.Dst, N.VN[I.Dst]));
            continue;
          }
        }
      }
      if (mayWriteThroughPointer(I)) {
        ++N.MemEpoch;
        for (unsigned L = 0; L != F.Locals.size(); ++L)
          if (Info.AddrTaken[L])
            N.defineLocal(L);
      }
      if (I.Dst != KNone)
        N.defineLocal(I.Dst);
    }
  }
  return Changed;
}
