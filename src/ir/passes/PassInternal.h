//===- ir/passes/PassInternal.h - Shared pass machinery --------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The neutrality calculus shared by the instruction passes: which
/// instructions are rewritable at all, which locals are invisible to the
/// partition problem (block-local), and when removing or adding an
/// individual access provably leaves every task's access flags alone.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_IR_PASSES_PASSINTERNAL_H
#define PACO_IR_PASSES_PASSINTERNAL_H

#include "ir/passes/Passes.h"

#include <vector>

namespace paco {
namespace passes {

/// Per-function safety facts, recomputed whenever a pass changed the
/// function (cheap: one scan).
struct FuncInfo {
  /// Locals whose address is taken somewhere in the function; stores
  /// through pointers may alias them, so they are never tracked.
  std::vector<bool> AddrTaken;
  /// Locals all of whose operand appearances (including the
  /// call-destination write, which the access analysis attributes to
  /// the call's continuation block) sit in one basic block, that are
  /// not parameters and not address-taken. Their abstract location is
  /// accessed by at most one task, and single-task data contributes
  /// nothing to the partition network, so accesses to them may appear
  /// or disappear freely.
  std::vector<bool> BlockLocal;
  /// Locals every definition of which is an instruction that generates
  /// no points-to constraint (arith/cmp/cast, IoRead, or Copy from a
  /// constant / run-time parameter). Their location provably holds no
  /// pointees, so a Copy constraint reading them is a no-op.
  std::vector<bool> NoPtrDefs;

  void compute(const IRFunction &F);
};

/// True for opcodes that neither touch memory, nor trap, nor generate
/// points-to constraints: the rewritable core (casts, unary and binary
/// arithmetic, comparisons). Div/Rem are included; callers that delete
/// or fold them must separately prove the divisor non-zero.
bool isPureArith(Opcode Op);

/// True when evaluating \p O reads no abstract location (constants,
/// run-time parameters, function references, none).
bool operandReadIsFree(const Operand &O);

/// Calls \p Fn for every operand the access analysis treats as a data
/// read of this instruction (mirrors AccessBuilder::instrAccesses;
/// AddrOfVar reads no data, IoRead reads none).
template <typename FnT> void forEachAccessRead(const Instr &I, FnT Fn) {
  switch (I.Op) {
  case Opcode::AddrOfVar:
  case Opcode::IoRead:
    return;
  case Opcode::Load:
    Fn(I.A);
    Fn(I.B);
    return;
  case Opcode::Store:
    Fn(I.A);
    Fn(I.B);
    Fn(I.C);
    return;
  case Opcode::Malloc:
  case Opcode::IoWrite:
  case Opcode::CallInd:
  case Opcode::Ret:
    Fn(I.A);
    return;
  case Opcode::IoReadBuf:
  case Opcode::IoWriteBuf:
    Fn(I.A);
    Fn(I.B);
    return;
  case Opcode::Call:
    for (const Operand &O : I.Args)
      Fn(O);
    return;
  default:
    Fn(I.A);
    Fn(I.B);
    Fn(I.C);
    return;
  }
}

/// Calls \p Fn(Operand &Slot, bool PtrConstraint) for every operand
/// slot of \p I a propagation pass may rewrite to an equivalent value.
/// Slots that feed the Andersen solver as pointer/value sources set
/// PtrConstraint: substituting there deletes (or redirects) a points-to
/// constraint, which is only neutral when the locals involved provably
/// hold no pointees (FuncInfo::NoPtrDefs). Pointer-base slots
/// (Load/Store/IoBuf base, CallInd callee, AddrOfVar's variable name)
/// are never offered.
template <typename FnT> void forEachSubstitutableRead(Instr &I, FnT Fn) {
  switch (I.Op) {
  case Opcode::AddrOfVar:
  case Opcode::IoRead:
  case Opcode::CallInd:
  case Opcode::Jmp:
    return;
  case Opcode::Copy:
    Fn(I.A, /*PtrConstraint=*/true);
    return;
  case Opcode::PtrAdd:
  case Opcode::Load:
  case Opcode::IoReadBuf:
  case Opcode::IoWriteBuf:
    Fn(I.B, false);
    return;
  case Opcode::Store:
    Fn(I.B, false);
    Fn(I.C, true);
    return;
  case Opcode::Malloc:
  case Opcode::IoWrite:
  case Opcode::Br:
    Fn(I.A, false);
    return;
  case Opcode::Ret:
    Fn(I.A, true);
    return;
  case Opcode::Call:
    for (Operand &O : I.Args)
      Fn(O, true);
    return;
  default: // pure arithmetic, comparisons, casts
    Fn(I.A, false);
    Fn(I.B, false);
    Fn(I.C, false);
    return;
  }
}

/// True when deleting a read of operand \p O at instruction index \p At
/// of block \p B leaves every task's flags for O's location unchanged:
/// the operand is free, its local is block-local, or an earlier
/// surviving instruction in \p B reads or writes the same location
/// (within-block coverage is monotone, so the earlier access subsumes
/// the removed contribution).
bool canDropRead(const FuncInfo &Info, const BasicBlock &B, unsigned At,
                 const Operand &O);

/// True when introducing a read of local \p Local at index \p At of
/// block \p B adds nothing to any task's flags: the local is
/// block-local or some earlier instruction in \p B already reads or
/// writes it.
bool canAddRead(const FuncInfo &Info, const BasicBlock &B, unsigned At,
                unsigned Local);

/// Deletes the blocks marked in \p Dead, remapping successor indices
/// and edge-count keys. No surviving block may target a dead one, and
/// the entry block must survive.
void removeBlocks(IRFunction &F, const std::vector<bool> &Dead);

/// Folds the cost-model weight of the dying instruction at \p At into
/// the next surviving instruction of \p B and erases it. \p At must not
/// be the terminator.
void eraseFoldingUnits(BasicBlock &B, unsigned At);

/// True when the instruction's divisor guarantees Div/Rem cannot trap
/// (non-zero integer constant, or the opcode is not Div/Rem on ints).
bool divisorProvablyNonZero(const Instr &I);

// The individual passes. Each returns true when it changed the module.
bool runConstProp(IRFunction &F, const FuncInfo &Info, PassStats &Stats);
bool runCSE(IRFunction &F, const FuncInfo &Info, PassStats &Stats);
bool runCleanup(IRFunction &F, const FuncInfo &Info, PassStats &Stats);
bool runDCE(IRFunction &F, const FuncInfo &Info, PassStats &Stats);
bool runCostSimplify(IRModule &M, ParamSpace &Space, PassStats &Stats);

} // namespace passes
} // namespace paco

#endif // PACO_IR_PASSES_PASSINTERNAL_H
