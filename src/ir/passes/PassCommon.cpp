//===- ir/passes/PassCommon.cpp - Shared pass machinery -------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

using namespace paco;
using namespace paco::passes;

bool passes::isPureArith(Opcode Op) {
  switch (Op) {
  case Opcode::IntToFloat:
  case Opcode::FloatToInt:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::BitNot:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

bool passes::operandReadIsFree(const Operand &O) {
  return O.K != Operand::Kind::Local && O.K != Operand::Kind::Global;
}

bool passes::divisorProvablyNonZero(const Instr &I) {
  if (I.Op != Opcode::Div && I.Op != Opcode::Rem)
    return true;
  if (I.Op == Opcode::Div && I.Ty == TypeKind::Double)
    return true; // float division by zero yields 0.0, it never traps
  // Exclude -1 as well: INT64_MIN / -1 overflows the hardware divide.
  return I.B.K == Operand::Kind::ConstInt && I.B.IntVal != 0 &&
         I.B.IntVal != -1;
}

void FuncInfo::compute(const IRFunction &F) {
  unsigned N = F.Locals.size();
  AddrTaken.assign(N, false);
  NoPtrDefs.assign(N, true);
  constexpr unsigned Unseen = KNone, Multi = KNone - 1;
  std::vector<unsigned> Seen(N, Unseen);
  auto note = [&](unsigned L, unsigned B) {
    if (Seen[L] == Unseen)
      Seen[L] = B;
    else if (Seen[L] != B)
      Seen[L] = Multi;
  };
  for (unsigned B = 0; B != F.Blocks.size(); ++B) {
    for (const Instr &I : F.Blocks[B].Instrs) {
      if (I.Op == Opcode::AddrOfVar && I.A.K == Operand::Kind::Local)
        AddrTaken[I.A.Index] = true;
      for (const Operand *O : {&I.A, &I.B, &I.C})
        if (O->K == Operand::Kind::Local)
          note(O->Index, B);
      for (const Operand &O : I.Args)
        if (O.K == Operand::Kind::Local)
          note(O.Index, B);
      if (I.Dst != KNone) {
        note(I.Dst, B);
        // The access analysis attributes a call's return-value write to
        // the continuation block, so the destination effectively
        // appears there too.
        if (I.Op == Opcode::Call && I.Succ0 != KNone)
          note(I.Dst, I.Succ0);
        bool Clean = isPureArith(I.Op) || I.Op == Opcode::IoRead ||
                     (I.Op == Opcode::Copy &&
                      (I.A.K == Operand::Kind::ConstInt ||
                       I.A.K == Operand::Kind::ConstFloat ||
                       I.A.K == Operand::Kind::RtParam));
        if (!Clean)
          NoPtrDefs[I.Dst] = false;
      }
    }
  }
  BlockLocal.assign(N, false);
  for (unsigned L = 0; L != N; ++L)
    BlockLocal[L] = L >= F.NumParams && !AddrTaken[L] && Seen[L] != Multi;
}

static bool sameLocation(const Operand &A, const Operand &B) {
  return A.K == B.K && A.Index == B.Index;
}

bool passes::canDropRead(const FuncInfo &Info, const BasicBlock &B,
                         unsigned At, const Operand &O) {
  if (operandReadIsFree(O))
    return true;
  if (O.K == Operand::Kind::Local && Info.BlockLocal[O.Index])
    return true;
  for (unsigned Q = 0; Q != At; ++Q) {
    const Instr &I = B.Instrs[Q];
    bool Witness = false;
    forEachAccessRead(I, [&](const Operand &R) {
      Witness |= sameLocation(R, O);
    });
    if (Witness)
      return true;
    if (O.K == Operand::Kind::Local && I.Dst != KNone && I.Dst == O.Index)
      return true;
  }
  return false;
}

bool passes::canAddRead(const FuncInfo &Info, const BasicBlock &B,
                        unsigned At, unsigned Local) {
  if (Info.BlockLocal[Local])
    return true;
  Operand O = Operand::local(Local);
  for (unsigned Q = 0; Q != At; ++Q) {
    const Instr &I = B.Instrs[Q];
    bool Witness = false;
    forEachAccessRead(I, [&](const Operand &R) {
      Witness |= sameLocation(R, O);
    });
    if (Witness || (I.Dst != KNone && I.Dst == Local))
      return true;
  }
  return false;
}

void passes::eraseFoldingUnits(BasicBlock &B, unsigned At) {
  assert(At + 1 < B.Instrs.size() && "cannot erase the terminator");
  B.Instrs[At + 1].Units += B.Instrs[At].Units;
  B.Instrs.erase(B.Instrs.begin() + At);
}

void passes::removeBlocks(IRFunction &F, const std::vector<bool> &Dead) {
  assert(!Dead[0] && "cannot remove the entry block");
  std::vector<unsigned> NewIdx(F.Blocks.size(), KNone);
  unsigned Next = 0;
  for (unsigned B = 0; B != F.Blocks.size(); ++B)
    if (!Dead[B])
      NewIdx[B] = Next++;
  // Compact the block list.
  std::vector<BasicBlock> Kept;
  Kept.reserve(Next);
  for (unsigned B = 0; B != F.Blocks.size(); ++B)
    if (!Dead[B])
      Kept.push_back(std::move(F.Blocks[B]));
  F.Blocks = std::move(Kept);
  // Remap successor indices of the survivors.
  for (BasicBlock &B : F.Blocks) {
    Instr &T = B.Instrs.back();
    if (T.Succ0 != KNone) {
      assert(NewIdx[T.Succ0] != KNone && "successor was deleted");
      T.Succ0 = NewIdx[T.Succ0];
    }
    if (T.Succ1 != KNone) {
      assert(NewIdx[T.Succ1] != KNone && "successor was deleted");
      T.Succ1 = NewIdx[T.Succ1];
    }
  }
  // Remap edge-count keys, dropping edges that touch deleted blocks.
  std::map<std::pair<unsigned, unsigned>, LinExpr> NewEdges;
  for (auto &[Edge, Count] : F.EdgeCounts) {
    if (Edge.first >= NewIdx.size() || Edge.second >= NewIdx.size())
      continue;
    unsigned From = NewIdx[Edge.first], To = NewIdx[Edge.second];
    if (From == KNone || To == KNone)
      continue;
    NewEdges.emplace(std::make_pair(From, To), std::move(Count));
  }
  F.EdgeCounts = std::move(NewEdges);
}
