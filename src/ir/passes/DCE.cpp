//===- ir/passes/DCE.cpp - Dead code elimination --------------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deletes pure instructions whose destination is a never-read
/// block-local temp (their location reaches no task summary and its
/// points-to contents feed nothing), folding the freed cost weight into
/// the next surviving instruction so block workloads stay exact. Also
/// deletes unreachable blocks whose instructions provably feed neither
/// the points-to solver nor the reachable-function walk; their weight is
/// discarded outright, because a zero-trip block contributes nothing to
/// any capacity.
///
//===----------------------------------------------------------------------===//

#include "ir/passes/PassInternal.h"

#include <queue>

using namespace paco;
using namespace paco::passes;

namespace {

/// True when instruction \p I may be deleted once its destination is
/// known dead: pure, non-trapping, and -- for the opcodes that do emit
/// points-to constraints (Copy/PtrAdd/AddrOfVar) -- only writing the
/// contents of the dead location itself.
bool deletableWhenDead(const Instr &I) {
  if (isPureArith(I.Op))
    return divisorProvablyNonZero(I);
  switch (I.Op) {
  case Opcode::Copy:
  case Opcode::PtrAdd:
  case Opcode::AddrOfVar:
    return true;
  default:
    return false;
  }
}

/// True when local \p L has no data read anywhere in block \p B.
bool localNeverReadIn(const BasicBlock &B, unsigned L) {
  for (const Instr &I : B.Instrs) {
    bool Read = false;
    forEachAccessRead(I, [&](const Operand &O) {
      Read |= O.K == Operand::Kind::Local && O.Index == L;
    });
    if (Read)
      return false;
  }
  return true;
}

bool deadInstructionPass(IRFunction &F, const FuncInfo &Info,
                         PassStats &Stats) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    bool Removed = true;
    while (Removed) {
      Removed = false;
      // Backward, so chains of dead temps fall in few scans.
      for (unsigned P = B.Instrs.size() - 1; P-- > 0;) {
        const Instr &I = B.Instrs[P];
        if (!deletableWhenDead(I) || I.Dst == KNone ||
            !Info.BlockLocal[I.Dst] || !localNeverReadIn(B, I.Dst))
          continue;
        bool CanDrop = true;
        forEachAccessRead(I, [&](const Operand &O) {
          CanDrop &= canDropRead(Info, B, P, O);
        });
        if (!CanDrop)
          continue;
        eraseFoldingUnits(B, P);
        ++Stats.InstrsRemoved;
        Changed = true;
        Removed = true;
      }
    }
  }
  return Changed;
}

/// True when every instruction of \p B is inert for the static analyses
/// that scan unreachable code: no points-to constraints, no function
/// references, no call edges.
bool blockInertWhenUnreachable(const BasicBlock &B) {
  for (const Instr &I : B.Instrs) {
    bool OK = false;
    if (isPureArith(I.Op)) {
      OK = true;
    } else {
      switch (I.Op) {
      case Opcode::Jmp:
      case Opcode::Br:
      case Opcode::IoRead:
        OK = true;
        break;
      case Opcode::Copy:
      case Opcode::IoWrite:
        OK = I.A.K == Operand::Kind::ConstInt ||
             I.A.K == Operand::Kind::ConstFloat ||
             I.A.K == Operand::Kind::RtParam;
        break;
      case Opcode::Ret:
        OK = I.A.isNone() || I.A.K == Operand::Kind::ConstInt ||
             I.A.K == Operand::Kind::ConstFloat;
        break;
      default:
        break;
      }
    }
    if (!OK)
      return false;
    for (const Operand *O : {&I.A, &I.B, &I.C})
      if (O->K == Operand::Kind::FuncRef)
        return false;
  }
  return true;
}

bool unreachableBlockPass(IRFunction &F, PassStats &Stats) {
  std::vector<bool> Reachable(F.Blocks.size(), false);
  std::queue<unsigned> Work;
  Reachable[0] = true;
  Work.push(0);
  while (!Work.empty()) {
    unsigned B = Work.front();
    Work.pop();
    for (unsigned S : F.successors(B))
      if (!Reachable[S]) {
        Reachable[S] = true;
        Work.push(S);
      }
  }
  std::vector<bool> Dead(F.Blocks.size(), false);
  bool Any = false;
  for (unsigned B = 0; B != F.Blocks.size(); ++B)
    if (!Reachable[B] && blockInertWhenUnreachable(F.Blocks[B])) {
      Dead[B] = true;
      Any = true;
    }
  if (!Any)
    return false;
  // A deleted block must not be the target of a survivor: shrink the
  // dead set until the survivors' edges stay closed.
  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    for (unsigned B = 0; B != F.Blocks.size(); ++B) {
      if (Dead[B])
        continue;
      for (unsigned S : F.successors(B))
        if (Dead[S]) {
          Dead[S] = false;
          Shrunk = true;
        }
    }
  }
  unsigned Count = 0;
  for (unsigned B = 0; B != F.Blocks.size(); ++B)
    if (Dead[B])
      ++Count;
  if (Count == 0)
    return false;
  removeBlocks(F, Dead);
  Stats.BlocksRemoved += Count;
  return true;
}

} // namespace

bool passes::runDCE(IRFunction &F, const FuncInfo &Info, PassStats &Stats) {
  bool Changed = deadInstructionPass(F, Info, Stats);
  Changed |= unreachableBlockPass(F, Stats);
  return Changed;
}
