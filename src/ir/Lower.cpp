//===- ir/Lower.cpp - AST to IR lowering ----------------------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Lower.h"

#include "obs/Trace.h"

#include <set>

using namespace paco;

namespace {

class Lowering {
public:
  Lowering(const Program &Prog, const SymbolicInfo &Info, ParamSpace &Space,
           DiagEngine &Diags)
      : Prog(Prog), Info(Info), Space(Space), Diags(Diags) {}

  LowerResult run();

private:
  /// Records the first fatal error (later ones are cascades) and mirrors
  /// it into the DiagEngine. Always returns false so call sites can
  /// `return fail(...)` from boolean helpers.
  bool fail(SourceLoc Loc, const std::string &Message) {
    if (!Err) {
      Err = LowerError{Loc, Message};
      Diags.error(Loc, Message);
    }
    return false;
  }

  //===--------------------------------------------------------------===//
  // Block and instruction plumbing
  //===--------------------------------------------------------------===//

  unsigned newBlock(LinExpr Count) {
    F->Blocks.push_back({});
    F->Blocks.back().Count = std::move(Count);
    return static_cast<unsigned>(F->Blocks.size() - 1);
  }

  Instr &emit(Instr I) {
    assert(F->Blocks[CurBB].Instrs.empty() ||
           !F->Blocks[CurBB].Instrs.back().isTerminator());
    F->Blocks[CurBB].Instrs.push_back(std::move(I));
    return F->Blocks[CurBB].Instrs.back();
  }

  bool blockOpen() const {
    const std::vector<Instr> &Is = F->Blocks[CurBB].Instrs;
    return Is.empty() || !Is.back().isTerminator();
  }

  void recordEdge(unsigned From, unsigned To, const LinExpr &Count) {
    auto [It, Inserted] = F->EdgeCounts.emplace(std::make_pair(From, To),
                                                Count);
    if (!Inserted)
      It->second += Count;
  }

  /// Emits an unconditional jump and records the edge count.
  void emitJmp(unsigned Target) {
    Instr I;
    I.Op = Opcode::Jmp;
    I.Succ0 = Target;
    unsigned From = CurBB;
    emit(std::move(I));
    recordEdge(From, Target, CurCount);
  }

  unsigned addLocal(const std::string &Name, TypeKind Ty, bool IsArray,
                    int64_t ArraySize, bool IsTemp) {
    std::string Unique = Name;
    if (UsedLocalNames.count(Unique))
      Unique += "." + std::to_string(F->Locals.size());
    UsedLocalNames.insert(Unique);
    F->Locals.push_back({Unique, Ty, IsArray, ArraySize, IsTemp});
    return static_cast<unsigned>(F->Locals.size() - 1);
  }

  unsigned newTemp(TypeKind Ty) {
    return addLocal("t" + std::to_string(F->Locals.size()), Ty,
                    /*IsArray=*/false, /*ArraySize=*/0, /*IsTemp=*/true);
  }

  TypeKind typeOfOperand(const Operand &O) const {
    switch (O.K) {
    case Operand::Kind::ConstInt:
      return TypeKind::Int;
    case Operand::Kind::ConstFloat:
      return TypeKind::Double;
    case Operand::Kind::Local:
      return F->Locals[O.Index].Type;
    case Operand::Kind::Global:
      return M->Globals[O.Index].Type;
    case Operand::Kind::FuncRef:
      return TypeKind::Func;
    case Operand::Kind::RtParam:
      return TypeKind::Int;
    case Operand::Kind::None:
      return TypeKind::Void;
    }
    return TypeKind::Void;
  }

  /// Converts \p Value to \p Target type, emitting a conversion if needed.
  Operand convert(Operand Value, TypeKind Target, SourceLoc Loc) {
    TypeKind From = typeOfOperand(Value);
    if (From == Target)
      return Value;
    if (From == TypeKind::Int && Target == TypeKind::Double) {
      if (Value.K == Operand::Kind::ConstInt)
        return Operand::constFloat(static_cast<double>(Value.IntVal));
      unsigned T = newTemp(TypeKind::Double);
      Instr I;
      I.Op = Opcode::IntToFloat;
      I.Ty = TypeKind::Double;
      I.Dst = T;
      I.A = Value;
      I.Loc = Loc;
      emit(std::move(I));
      return Operand::local(T);
    }
    if (From == TypeKind::Double && Target == TypeKind::Int) {
      if (Value.K == Operand::Kind::ConstFloat)
        return Operand::constInt(static_cast<int64_t>(Value.FloatVal));
      unsigned T = newTemp(TypeKind::Int);
      Instr I;
      I.Op = Opcode::FloatToInt;
      I.Ty = TypeKind::Int;
      I.Dst = T;
      I.A = Value;
      I.Loc = Loc;
      emit(std::move(I));
      return Operand::local(T);
    }
    // Same-category moves (e.g. malloc's int* into double*).
    return Value;
  }

  //===--------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------===//

  Operand varSlot(const VarDecl *Var, SourceLoc Loc) {
    auto It = VarSlots.find(Var);
    if (It == VarSlots.end()) {
      fail(Loc, "variable '" + Var->Name + "' has no storage slot");
      return Operand::constInt(0);
    }
    return It->second;
  }

  /// Produces a pointer operand to the first element of an array
  /// variable, or passes a pointer value through.
  Operand lowerBasePointer(const Expr &Base) {
    if (Base.getKind() == Expr::Kind::VarRef) {
      const auto &Ref = static_cast<const VarRefExpr &>(Base);
      if (Ref.Var && Ref.Var->IsArray) {
        unsigned T = newTemp(pointerTo(Ref.Var->Type));
        Instr I;
        I.Op = Opcode::AddrOfVar;
        I.Ty = pointerTo(Ref.Var->Type);
        I.Dst = T;
        I.A = varSlot(Ref.Var, Base.loc());
        I.Loc = Base.loc();
        emit(std::move(I));
        return Operand::local(T);
      }
    }
    return lowerExprValue(Base);
  }

  Operand lowerExprValue(const Expr &E);
  Operand lowerBinary(const BinaryExpr &B);
  Operand lowerShortCircuit(const BinaryExpr &B);
  Operand lowerAssign(const AssignExpr &A);
  Operand lowerCall(const CallExpr &Call);
  Operand lowerTernary(const TernaryExpr &T);

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  void lowerStmt(const Stmt &S);
  void lowerIf(const IfStmt &S);
  void lowerWhile(const WhileStmt &S);
  void lowerFor(const ForStmt &S);
  void lowerFunction(const FuncDecl &Func, IRFunction &Out);

  const Program &Prog;
  const SymbolicInfo &Info;
  ParamSpace &Space;
  DiagEngine &Diags;

  IRModule *M = nullptr;
  IRFunction *F = nullptr;
  unsigned CurBB = 0;
  LinExpr CurCount;
  std::optional<LowerError> Err;
  std::map<const VarDecl *, Operand> VarSlots;
  std::map<const FuncDecl *, unsigned> FuncIndex;
  std::set<std::string> UsedLocalNames;
  std::vector<unsigned> BreakTargets;
  std::vector<unsigned> ContinueTargets;
};

LowerResult Lowering::run() {
  auto Module = std::make_unique<IRModule>();
  M = Module.get();

  for (const auto &G : Prog.Globals) {
    GlobalVar Out;
    Out.Name = G->Name;
    Out.Type = G->Type;
    Out.IsArray = G->IsArray;
    Out.ArraySize = G->ArraySize;
    for (const ExprPtr &Init : G->Init) {
      const Expr *E = Init.get();
      double Sign = 1.0;
      if (E->getKind() == Expr::Kind::Unary) {
        Sign = -1.0;
        E = static_cast<const UnaryExpr *>(E)->Operand.get();
      }
      if (E->getKind() == Expr::Kind::IntLit) {
        int64_t V = static_cast<const IntLitExpr *>(E)->Value;
        if (G->Type == TypeKind::Double)
          Out.Init.push_back(Operand::constFloat(Sign * double(V)));
        else
          Out.Init.push_back(
              Operand::constInt(Sign < 0 ? -V : V));
      } else {
        double V = static_cast<const FloatLitExpr *>(E)->Value;
        Out.Init.push_back(Operand::constFloat(Sign * V));
      }
    }
    VarSlots[G.get()] =
        Operand::global(static_cast<unsigned>(Module->Globals.size()));
    Module->Globals.push_back(std::move(Out));
  }

  // Register all functions first so calls and func values can refer
  // forward.
  for (const auto &Func : Prog.Functions) {
    FuncIndex[Func.get()] =
        static_cast<unsigned>(Module->Functions.size());
    auto Out = std::make_unique<IRFunction>();
    Out->Name = Func->Name;
    Out->RetType = Func->ReturnType;
    Out->NumParams = static_cast<unsigned>(Func->Params.size());
    Module->Functions.push_back(std::move(Out));
  }
  Module->MainIndex = Module->findFunction("main");

  for (const auto &Func : Prog.Functions) {
    lowerFunction(*Func, *Module->Functions[FuncIndex[Func.get()]]);
    if (Err)
      return std::unexpected(*Err);
  }
  return Module;
}

void Lowering::lowerFunction(const FuncDecl &Func, IRFunction &Out) {
  F = &Out;
  UsedLocalNames.clear();
  BreakTargets.clear();
  ContinueTargets.clear();

  auto EntryIt = Info.EntryCount.find(&Func);
  if (EntryIt == Info.EntryCount.end()) {
    fail(Func.Loc, "function '" + Func.Name +
                       "' has no symbolic entry count; symbolic analysis "
                       "did not visit it");
    return;
  }
  F->EntryCount = EntryIt->second;
  CurCount = F->EntryCount;
  CurBB = newBlock(CurCount);

  for (const auto &Param : Func.Params) {
    unsigned Slot = addLocal(Param->Name, Param->Type, /*IsArray=*/false,
                             /*ArraySize=*/0, /*IsTemp=*/false);
    VarSlots[Param.get()] = Operand::local(Slot);
  }

  lowerStmt(*Func.Body);

  if (blockOpen()) {
    Instr I;
    I.Op = Opcode::Ret;
    if (Func.ReturnType != TypeKind::Void)
      I.A = Func.ReturnType == TypeKind::Double ? Operand::constFloat(0.0)
                                                : Operand::constInt(0);
    emit(std::move(I));
  }
}

Operand Lowering::lowerExprValue(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return Operand::constInt(static_cast<const IntLitExpr &>(E).Value);
  case Expr::Kind::FloatLit:
    return Operand::constFloat(static_cast<const FloatLitExpr &>(E).Value);
  case Expr::Kind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(E);
    if (Ref.ParamIndex >= 0)
      return Operand::rtParam(static_cast<unsigned>(Ref.ParamIndex));
    if (Ref.Function)
      return Operand::funcRef(FuncIndex.at(Ref.Function));
    if (!Ref.Var) {
      fail(E.loc(), "unresolved variable reference '" + Ref.Name + "'");
      return Operand::constInt(0);
    }
    if (Ref.Var->IsArray)
      return lowerBasePointer(E); // decay
    return varSlot(Ref.Var, E.loc());
  }
  case Expr::Kind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    Operand V = lowerExprValue(*U.Operand);
    V = convert(V, E.Type, U.Operand->loc());
    unsigned T = newTemp(E.Type);
    Instr I;
    I.Ty = E.Type;
    I.Dst = T;
    I.A = V;
    I.Loc = E.loc();
    switch (U.Op) {
    case UnaryOp::Neg:    I.Op = Opcode::Neg; break;
    case UnaryOp::Not:    I.Op = Opcode::Not; break;
    case UnaryOp::BitNot: I.Op = Opcode::BitNot; break;
    }
    emit(std::move(I));
    return Operand::local(T);
  }
  case Expr::Kind::Binary:
    return lowerBinary(static_cast<const BinaryExpr &>(E));
  case Expr::Kind::Assign:
    return lowerAssign(static_cast<const AssignExpr &>(E));
  case Expr::Kind::Call:
    return lowerCall(static_cast<const CallExpr &>(E));
  case Expr::Kind::Index: {
    const auto &Ix = static_cast<const IndexExpr &>(E);
    Operand Ptr = lowerBasePointer(*Ix.Base);
    Operand Idx = lowerExprValue(*Ix.Index);
    unsigned T = newTemp(E.Type);
    Instr I;
    I.Op = Opcode::Load;
    I.Ty = E.Type;
    I.Dst = T;
    I.A = Ptr;
    I.B = Idx;
    I.Loc = E.loc();
    emit(std::move(I));
    return Operand::local(T);
  }
  case Expr::Kind::Deref: {
    const auto &D = static_cast<const DerefExpr &>(E);
    Operand Ptr = lowerExprValue(*D.Pointer);
    unsigned T = newTemp(E.Type);
    Instr I;
    I.Op = Opcode::Load;
    I.Ty = E.Type;
    I.Dst = T;
    I.A = Ptr;
    I.B = Operand::constInt(0);
    I.Loc = E.loc();
    emit(std::move(I));
    return Operand::local(T);
  }
  case Expr::Kind::AddrOf: {
    const auto &A = static_cast<const AddrOfExpr &>(E);
    const auto &Ref = static_cast<const VarRefExpr &>(*A.Operand);
    unsigned T = newTemp(E.Type);
    Instr I;
    I.Op = Opcode::AddrOfVar;
    I.Ty = E.Type;
    I.Dst = T;
    I.A = varSlot(Ref.Var, E.loc());
    I.Loc = E.loc();
    emit(std::move(I));
    return Operand::local(T);
  }
  case Expr::Kind::Ternary:
    return lowerTernary(static_cast<const TernaryExpr &>(E));
  }
  fail(E.loc(), "expression kind not handled by lowering");
  return Operand::none();
}

Operand Lowering::lowerBinary(const BinaryExpr &B) {
  if (B.Op == BinaryOp::LAnd || B.Op == BinaryOp::LOr)
    return lowerShortCircuit(B);

  Operand L = lowerExprValue(*B.LHS);
  Operand R = lowerExprValue(*B.RHS);
  TypeKind LT = B.LHS->Type, RT = B.RHS->Type;

  // Pointer arithmetic.
  if ((B.Op == BinaryOp::Add || B.Op == BinaryOp::Sub) &&
      (isPointerType(LT) || isPointerType(RT))) {
    Operand Ptr = isPointerType(LT) ? L : R;
    Operand Idx = isPointerType(LT) ? R : L;
    if (B.Op == BinaryOp::Sub) {
      unsigned NegT = newTemp(TypeKind::Int);
      Instr NegI;
      NegI.Op = Opcode::Neg;
      NegI.Ty = TypeKind::Int;
      NegI.Dst = NegT;
      NegI.A = Idx;
      NegI.Loc = B.loc();
      emit(std::move(NegI));
      Idx = Operand::local(NegT);
    }
    unsigned T = newTemp(B.Type);
    Instr I;
    I.Op = Opcode::PtrAdd;
    I.Ty = B.Type;
    I.Dst = T;
    I.A = Ptr;
    I.B = Idx;
    I.Loc = B.loc();
    emit(std::move(I));
    return Operand::local(T);
  }

  bool IsCompare = B.Op == BinaryOp::Lt || B.Op == BinaryOp::Gt ||
                   B.Op == BinaryOp::Le || B.Op == BinaryOp::Ge ||
                   B.Op == BinaryOp::Eq || B.Op == BinaryOp::Ne;
  TypeKind OperateTy;
  if (IsCompare) {
    if (isPointerType(LT) || LT == TypeKind::Func)
      OperateTy = LT;
    else
      OperateTy = (LT == TypeKind::Double || RT == TypeKind::Double)
                      ? TypeKind::Double
                      : TypeKind::Int;
  } else {
    OperateTy = B.Type;
  }
  if (OperateTy == TypeKind::Int || OperateTy == TypeKind::Double) {
    L = convert(L, OperateTy, B.LHS->loc());
    R = convert(R, OperateTy, B.RHS->loc());
  }

  unsigned T = newTemp(B.Type);
  Instr I;
  I.Ty = OperateTy;
  I.Dst = T;
  I.A = L;
  I.B = R;
  I.Loc = B.loc();
  switch (B.Op) {
  case BinaryOp::Add: I.Op = Opcode::Add; break;
  case BinaryOp::Sub: I.Op = Opcode::Sub; break;
  case BinaryOp::Mul: I.Op = Opcode::Mul; break;
  case BinaryOp::Div: I.Op = Opcode::Div; break;
  case BinaryOp::Rem: I.Op = Opcode::Rem; break;
  case BinaryOp::And: I.Op = Opcode::And; break;
  case BinaryOp::Or:  I.Op = Opcode::Or; break;
  case BinaryOp::Xor: I.Op = Opcode::Xor; break;
  case BinaryOp::Shl: I.Op = Opcode::Shl; break;
  case BinaryOp::Shr: I.Op = Opcode::Shr; break;
  case BinaryOp::Lt:  I.Op = Opcode::CmpLt; break;
  case BinaryOp::Gt:  I.Op = Opcode::CmpGt; break;
  case BinaryOp::Le:  I.Op = Opcode::CmpLe; break;
  case BinaryOp::Ge:  I.Op = Opcode::CmpGe; break;
  case BinaryOp::Eq:  I.Op = Opcode::CmpEq; break;
  case BinaryOp::Ne:  I.Op = Opcode::CmpNe; break;
  case BinaryOp::LAnd:
  case BinaryOp::LOr:
    assert(false && "short-circuit handled above");
    break;
  }
  emit(std::move(I));
  return Operand::local(T);
}

Operand Lowering::lowerShortCircuit(const BinaryExpr &B) {
  bool IsAnd = B.Op == BinaryOp::LAnd;
  unsigned Dst = newTemp(TypeKind::Int);
  Instr Seed;
  Seed.Op = Opcode::Copy;
  Seed.Ty = TypeKind::Int;
  Seed.Dst = Dst;
  Seed.A = Operand::constInt(IsAnd ? 0 : 1);
  Seed.Loc = B.loc();
  emit(std::move(Seed));

  Operand L = lowerExprValue(*B.LHS);
  // The RHS block runs conditionally; its count is approximated by the
  // parent count (a deliberate cost over-approximation).
  unsigned RhsBB = newBlock(CurCount);
  unsigned JoinBB = newBlock(CurCount);
  Instr Branch;
  Branch.Op = Opcode::Br;
  Branch.A = L;
  Branch.Succ0 = IsAnd ? RhsBB : JoinBB;
  Branch.Succ1 = IsAnd ? JoinBB : RhsBB;
  Branch.Loc = B.loc();
  unsigned From = CurBB;
  emit(std::move(Branch));
  recordEdge(From, RhsBB, CurCount);
  recordEdge(From, JoinBB, CurCount);

  CurBB = RhsBB;
  Operand R = lowerExprValue(*B.RHS);
  unsigned BoolT = newTemp(TypeKind::Int);
  Instr Norm;
  Norm.Op = Opcode::CmpNe;
  Norm.Ty = typeOfOperand(R);
  Norm.Dst = BoolT;
  Norm.A = R;
  Norm.B = Norm.Ty == TypeKind::Double ? Operand::constFloat(0.0)
                                       : Operand::constInt(0);
  Norm.Loc = B.loc();
  emit(std::move(Norm));
  Instr Set;
  Set.Op = Opcode::Copy;
  Set.Ty = TypeKind::Int;
  Set.Dst = Dst;
  Set.A = Operand::local(BoolT);
  Set.Loc = B.loc();
  emit(std::move(Set));
  emitJmp(JoinBB);

  CurBB = JoinBB;
  return Operand::local(Dst);
}

Operand Lowering::lowerAssign(const AssignExpr &A) {
  switch (A.Target->getKind()) {
  case Expr::Kind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(*A.Target);
    Operand Value = lowerExprValue(*A.Value);
    Value = convert(Value, Ref.Var->Type, A.Value->loc());
    Operand Slot = varSlot(Ref.Var, A.loc());
    Instr I;
    I.Op = Opcode::Copy;
    I.Ty = Ref.Var->Type;
    if (Err)
      return Value; // slot lookup failed; module is discarded anyway
    assert(Slot.K == Operand::Kind::Local ||
           Slot.K == Operand::Kind::Global);
    if (Slot.K == Operand::Kind::Local) {
      I.Dst = Slot.Index;
      I.A = Value;
      I.Loc = A.loc();
      emit(std::move(I));
    } else {
      // Globals are written through a store to their location.
      unsigned T = newTemp(pointerTo(Ref.Var->Type == TypeKind::Double
                                         ? TypeKind::Double
                                         : TypeKind::Int));
      Instr Addr;
      Addr.Op = Opcode::AddrOfVar;
      Addr.Ty = F->Locals[T].Type;
      Addr.Dst = T;
      Addr.A = Slot;
      Addr.Loc = A.loc();
      emit(std::move(Addr));
      Instr St;
      St.Op = Opcode::Store;
      St.Ty = Ref.Var->Type;
      St.A = Operand::local(T);
      St.B = Operand::constInt(0);
      St.C = Value;
      St.Loc = A.loc();
      emit(std::move(St));
    }
    return Value;
  }
  case Expr::Kind::Index: {
    const auto &Ix = static_cast<const IndexExpr &>(*A.Target);
    Operand Ptr = lowerBasePointer(*Ix.Base);
    Operand Idx = lowerExprValue(*Ix.Index);
    Operand Value = lowerExprValue(*A.Value);
    Value = convert(Value, A.Target->Type, A.Value->loc());
    Instr I;
    I.Op = Opcode::Store;
    I.Ty = A.Target->Type;
    I.A = Ptr;
    I.B = Idx;
    I.C = Value;
    I.Loc = A.loc();
    emit(std::move(I));
    return Value;
  }
  case Expr::Kind::Deref: {
    const auto &D = static_cast<const DerefExpr &>(*A.Target);
    Operand Ptr = lowerExprValue(*D.Pointer);
    Operand Value = lowerExprValue(*A.Value);
    Value = convert(Value, A.Target->Type, A.Value->loc());
    Instr I;
    I.Op = Opcode::Store;
    I.Ty = A.Target->Type;
    I.A = Ptr;
    I.B = Operand::constInt(0);
    I.C = Value;
    I.Loc = A.loc();
    emit(std::move(I));
    return Value;
  }
  default:
    fail(A.loc(), "assignment target kind not handled by lowering");
    return Operand::none();
  }
}

Operand Lowering::lowerCall(const CallExpr &Call) {
  const auto &Callee = static_cast<const VarRefExpr &>(*Call.Callee);

  // Builtins first: they are straight-line instructions.
  switch (Call.BuiltinKind) {
  case CallExpr::Builtin::IoRead: {
    unsigned T = newTemp(TypeKind::Int);
    Instr I;
    I.Op = Opcode::IoRead;
    I.Ty = TypeKind::Int;
    I.Dst = T;
    I.Loc = Call.loc();
    emit(std::move(I));
    return Operand::local(T);
  }
  case CallExpr::Builtin::IoWrite: {
    Operand V = lowerExprValue(*Call.Args[0]);
    Instr I;
    I.Op = Opcode::IoWrite;
    I.Ty = Call.Args[0]->Type;
    I.A = V;
    I.Loc = Call.loc();
    emit(std::move(I));
    return Operand::none();
  }
  case CallExpr::Builtin::IoReadBuf:
  case CallExpr::Builtin::IoWriteBuf: {
    Operand Ptr = lowerBasePointer(*Call.Args[0]);
    Operand Count = lowerExprValue(*Call.Args[1]);
    Instr I;
    I.Op = Call.BuiltinKind == CallExpr::Builtin::IoReadBuf
               ? Opcode::IoReadBuf
               : Opcode::IoWriteBuf;
    I.Ty = Call.Args[0]->Type;
    I.A = Ptr;
    I.B = Count;
    I.Loc = Call.loc();
    emit(std::move(I));
    return Operand::none();
  }
  case CallExpr::Builtin::Malloc: {
    Operand Count = lowerExprValue(*Call.Args[0]);
    auto SizeIt = Info.MallocSize.find(&Call);
    if (SizeIt == Info.MallocSize.end()) {
      fail(Call.loc(), "malloc site has no symbolic size; symbolic "
                       "analysis did not visit it");
      return Operand::constInt(0);
    }
    unsigned Site = static_cast<unsigned>(M->AllocSites.size());
    AllocSiteInfo SiteInfo;
    SiteInfo.SizeElems = SizeIt->second;
    SiteInfo.ExecCount = CurCount;
    SiteInfo.ElemType = isPointerType(Call.Type) ? pointeeType(Call.Type)
                                                 : TypeKind::Int;
    SiteInfo.Loc = Call.loc();
    M->AllocSites.push_back(std::move(SiteInfo));
    unsigned T = newTemp(Call.Type);
    Instr I;
    I.Op = Opcode::Malloc;
    I.Ty = Call.Type;
    I.Dst = T;
    I.A = Count;
    I.AllocSite = Site;
    I.Loc = Call.loc();
    emit(std::move(I));
    return Operand::local(T);
  }
  case CallExpr::Builtin::None:
    break;
  }

  // Direct or indirect call: a block terminator with a continuation.
  Instr I;
  I.Loc = Call.loc();
  Operand Result = Operand::none();
  if (Callee.Function) {
    const FuncDecl *Target = Callee.Function;
    I.Op = Opcode::Call;
    I.Callee = FuncIndex.at(Target);
    I.Ty = Target->ReturnType;
    for (size_t Idx = 0; Idx != Call.Args.size(); ++Idx) {
      Operand Arg = lowerExprValue(*Call.Args[Idx]);
      // Conversions belong to the argument expression, not the call.
      Arg = convert(Arg, Target->Params[Idx]->Type, Call.Args[Idx]->loc());
      I.Args.push_back(Arg);
    }
    if (Target->ReturnType != TypeKind::Void) {
      unsigned T = newTemp(Target->ReturnType);
      I.Dst = T;
      Result = Operand::local(T);
    }
  } else {
    I.Op = Opcode::CallInd;
    I.Ty = TypeKind::Void;
    I.A = varSlot(Callee.Var, Call.loc());
  }
  unsigned Cont = newBlock(CurCount);
  I.Succ0 = Cont;
  unsigned From = CurBB;
  emit(std::move(I));
  recordEdge(From, Cont, CurCount);
  CurBB = Cont;
  return Result;
}

Operand Lowering::lowerTernary(const TernaryExpr &T) {
  Operand Cond = lowerExprValue(*T.Cond);
  unsigned Dst = newTemp(T.Type);
  unsigned ThenBB = newBlock(CurCount);
  unsigned ElseBB = newBlock(CurCount);
  unsigned JoinBB = newBlock(CurCount);
  Instr Branch;
  Branch.Op = Opcode::Br;
  Branch.A = Cond;
  Branch.Succ0 = ThenBB;
  Branch.Succ1 = ElseBB;
  Branch.Loc = T.loc();
  unsigned From = CurBB;
  emit(std::move(Branch));
  recordEdge(From, ThenBB, CurCount);
  recordEdge(From, ElseBB, CurCount);

  CurBB = ThenBB;
  Operand ThenV = convert(lowerExprValue(*T.Then), T.Type, T.Then->loc());
  Instr CopyThen;
  CopyThen.Op = Opcode::Copy;
  CopyThen.Ty = T.Type;
  CopyThen.Dst = Dst;
  CopyThen.A = ThenV;
  CopyThen.Loc = T.Then->loc();
  emit(std::move(CopyThen));
  emitJmp(JoinBB);

  CurBB = ElseBB;
  Operand ElseV = convert(lowerExprValue(*T.Else), T.Type, T.Else->loc());
  Instr CopyElse;
  CopyElse.Op = Opcode::Copy;
  CopyElse.Ty = T.Type;
  CopyElse.Dst = Dst;
  CopyElse.A = ElseV;
  CopyElse.Loc = T.Else->loc();
  emit(std::move(CopyElse));
  emitJmp(JoinBB);

  CurBB = JoinBB;
  return Operand::local(Dst);
}

void Lowering::lowerStmt(const Stmt &S) {
  if (Err)
    return; // stop the cascade after the first fatal error
  switch (S.getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      lowerStmt(*Child);
    return;
  case Stmt::Kind::DeclStmt: {
    const auto &D = static_cast<const DeclStmt &>(S);
    unsigned Slot = addLocal(D.Var->Name, D.Var->Type, D.Var->IsArray,
                             D.Var->ArraySize, /*IsTemp=*/false);
    VarSlots[D.Var.get()] = Operand::local(Slot);
    if (D.InitExpr) {
      Operand Value = lowerExprValue(*D.InitExpr);
      Value = convert(Value, D.Var->Type, D.InitExpr->loc());
      Instr I;
      I.Op = Opcode::Copy;
      I.Ty = D.Var->Type;
      I.Dst = Slot;
      I.A = Value;
      I.Loc = S.loc();
      emit(std::move(I));
    }
    return;
  }
  case Stmt::Kind::ExprStmt:
    lowerExprValue(*static_cast<const ExprStmt &>(S).E);
    return;
  case Stmt::Kind::If:
    lowerIf(static_cast<const IfStmt &>(S));
    return;
  case Stmt::Kind::While:
    lowerWhile(static_cast<const WhileStmt &>(S));
    return;
  case Stmt::Kind::For:
    lowerFor(static_cast<const ForStmt &>(S));
    return;
  case Stmt::Kind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    Instr I;
    I.Op = Opcode::Ret;
    I.Loc = S.loc();
    if (R.Value) {
      Operand V = lowerExprValue(*R.Value);
      I.A = convert(V, F->RetType, R.Value->loc());
    }
    emit(std::move(I));
    CurCount = LinExpr();
    CurBB = newBlock(CurCount); // unreachable continuation
    return;
  }
  case Stmt::Kind::Break: {
    assert(!BreakTargets.empty() && "sema rejects stray break");
    emitJmp(BreakTargets.back());
    CurCount = LinExpr();
    CurBB = newBlock(CurCount);
    return;
  }
  case Stmt::Kind::Continue: {
    assert(!ContinueTargets.empty() && "sema rejects stray continue");
    emitJmp(ContinueTargets.back());
    CurCount = LinExpr();
    CurBB = newBlock(CurCount);
    return;
  }
  }
}

void Lowering::lowerIf(const IfStmt &S) {
  auto FreqIt = Info.IfFreq.find(&S);
  if (FreqIt == Info.IfFreq.end()) {
    fail(S.loc(), "if statement has no branch-frequency annotation; "
                  "symbolic analysis did not visit it");
    return;
  }
  const LinExpr &Freq = FreqIt->second;
  LinExpr Count = CurCount;
  LinExpr ThenCount = LinExpr::mul(Count, Freq, Space);
  LinExpr ElseCount =
      LinExpr::mul(Count, LinExpr::constant(1) - Freq, Space);

  Operand Cond = lowerExprValue(*S.Cond);
  unsigned ThenBB = newBlock(ThenCount);
  unsigned JoinBB = KNone;
  unsigned ElseBB = KNone;
  if (S.Else) {
    ElseBB = newBlock(ElseCount);
    JoinBB = newBlock(Count);
  } else {
    JoinBB = newBlock(Count);
  }
  Instr Branch;
  Branch.Op = Opcode::Br;
  Branch.A = Cond;
  Branch.Succ0 = ThenBB;
  Branch.Succ1 = S.Else ? ElseBB : JoinBB;
  Branch.Loc = S.loc();
  unsigned From = CurBB;
  emit(std::move(Branch));
  recordEdge(From, ThenBB, ThenCount);
  recordEdge(From, S.Else ? ElseBB : JoinBB, ElseCount);

  CurBB = ThenBB;
  CurCount = ThenCount;
  lowerStmt(*S.Then);
  if (blockOpen())
    emitJmp(JoinBB);

  if (S.Else) {
    CurBB = ElseBB;
    CurCount = ElseCount;
    lowerStmt(*S.Else);
    if (blockOpen())
      emitJmp(JoinBB);
  }

  CurBB = JoinBB;
  CurCount = Count;
}

void Lowering::lowerWhile(const WhileStmt &S) {
  auto TripIt = Info.LoopTrip.find(&S);
  if (TripIt == Info.LoopTrip.end()) {
    fail(S.loc(), "while loop has no trip-count annotation; symbolic "
                  "analysis did not visit it");
    return;
  }
  const LinExpr &Trip = TripIt->second;
  LinExpr Count = CurCount;
  LinExpr BodyCount = LinExpr::mul(Count, Trip, Space);
  LinExpr HeaderCount = BodyCount + Count;

  unsigned HeaderBB = newBlock(HeaderCount);
  unsigned BodyBB = newBlock(BodyCount);
  unsigned ExitBB = newBlock(Count);
  emitJmp(HeaderBB);

  CurBB = HeaderBB;
  CurCount = HeaderCount;
  Operand Cond = lowerExprValue(*S.Cond);
  Instr Branch;
  Branch.Op = Opcode::Br;
  Branch.A = Cond;
  Branch.Succ0 = BodyBB;
  Branch.Succ1 = ExitBB;
  Branch.Loc = S.loc();
  unsigned From = CurBB;
  emit(std::move(Branch));
  recordEdge(From, BodyBB, BodyCount);
  recordEdge(From, ExitBB, Count);

  CurBB = BodyBB;
  CurCount = BodyCount;
  BreakTargets.push_back(ExitBB);
  ContinueTargets.push_back(HeaderBB);
  lowerStmt(*S.Body);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  if (blockOpen())
    emitJmp(HeaderBB);

  CurBB = ExitBB;
  CurCount = Count;
}

void Lowering::lowerFor(const ForStmt &S) {
  if (S.Init)
    lowerStmt(*S.Init);

  auto TripIt = Info.LoopTrip.find(&S);
  if (TripIt == Info.LoopTrip.end()) {
    fail(S.loc(), "for loop has no trip-count annotation; symbolic "
                  "analysis did not visit it");
    return;
  }
  const LinExpr &Trip = TripIt->second;
  LinExpr Count = CurCount;
  LinExpr BodyCount = LinExpr::mul(Count, Trip, Space);
  LinExpr HeaderCount = BodyCount + Count;

  unsigned HeaderBB = newBlock(HeaderCount);
  unsigned BodyBB = newBlock(BodyCount);
  unsigned StepBB = newBlock(BodyCount);
  unsigned ExitBB = newBlock(Count);
  emitJmp(HeaderBB);

  CurBB = HeaderBB;
  CurCount = HeaderCount;
  if (S.Cond) {
    Operand Cond = lowerExprValue(*S.Cond);
    Instr Branch;
    Branch.Op = Opcode::Br;
    Branch.A = Cond;
    Branch.Succ0 = BodyBB;
    Branch.Succ1 = ExitBB;
    Branch.Loc = S.loc();
    unsigned From = CurBB;
    emit(std::move(Branch));
    recordEdge(From, BodyBB, BodyCount);
    recordEdge(From, ExitBB, Count);
  } else {
    CurCount = BodyCount;
    emitJmp(BodyBB);
  }

  CurBB = BodyBB;
  CurCount = BodyCount;
  BreakTargets.push_back(ExitBB);
  ContinueTargets.push_back(StepBB);
  lowerStmt(*S.Body);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  if (blockOpen())
    emitJmp(StepBB);

  CurBB = StepBB;
  CurCount = BodyCount;
  if (S.Step)
    lowerExprValue(*S.Step);
  emitJmp(HeaderBB);

  CurBB = ExitBB;
  CurCount = Count;
}

} // namespace

LowerResult paco::lowerProgram(const Program &Prog, const SymbolicInfo &Info,
                               ParamSpace &Space, DiagEngine &Diags) {
  obs::ScopedSpan Span("ir.lower", "ir");
  Lowering L(Prog, Info, Space, Diags);
  return L.run();
}
