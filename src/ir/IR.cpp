//===- ir/IR.cpp - Quad-style control-flow-graph IR ------------ ---------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

using namespace paco;

const char *paco::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Copy:       return "copy";
  case Opcode::IntToFloat: return "itof";
  case Opcode::FloatToInt: return "ftoi";
  case Opcode::Neg:        return "neg";
  case Opcode::Not:        return "not";
  case Opcode::BitNot:     return "bitnot";
  case Opcode::Add:        return "add";
  case Opcode::Sub:        return "sub";
  case Opcode::Mul:        return "mul";
  case Opcode::Div:        return "div";
  case Opcode::Rem:        return "rem";
  case Opcode::And:        return "and";
  case Opcode::Or:         return "or";
  case Opcode::Xor:        return "xor";
  case Opcode::Shl:        return "shl";
  case Opcode::Shr:        return "shr";
  case Opcode::CmpLt:      return "cmplt";
  case Opcode::CmpLe:      return "cmple";
  case Opcode::CmpGt:      return "cmpgt";
  case Opcode::CmpGe:      return "cmpge";
  case Opcode::CmpEq:      return "cmpeq";
  case Opcode::CmpNe:      return "cmpne";
  case Opcode::AddrOfVar:  return "addrof";
  case Opcode::PtrAdd:     return "ptradd";
  case Opcode::Load:       return "load";
  case Opcode::Store:      return "store";
  case Opcode::Malloc:     return "malloc";
  case Opcode::IoRead:     return "io_read";
  case Opcode::IoWrite:    return "io_write";
  case Opcode::IoReadBuf:  return "io_read_buf";
  case Opcode::IoWriteBuf: return "io_write_buf";
  case Opcode::Call:       return "call";
  case Opcode::CallInd:    return "callind";
  case Opcode::Ret:        return "ret";
  case Opcode::Br:         return "br";
  case Opcode::Jmp:        return "jmp";
  }
  return "?";
}

std::vector<unsigned> IRFunction::successors(unsigned B) const {
  const Instr &Term = Blocks[B].terminator();
  switch (Term.Op) {
  case Opcode::Br:
    return {Term.Succ0, Term.Succ1};
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::CallInd:
    return {Term.Succ0};
  case Opcode::Ret:
    return {};
  default:
    assert(false && "non-terminator at block end");
    return {};
  }
}

unsigned IRModule::findFunction(const std::string &Name) const {
  for (unsigned I = 0; I != Functions.size(); ++I)
    if (Functions[I]->Name == Name)
      return I;
  return KNone;
}

namespace {

std::string operandToString(const Operand &O, const IRFunction *F,
                            const IRModule &M) {
  switch (O.K) {
  case Operand::Kind::None:
    return "_";
  case Operand::Kind::ConstInt:
    return std::to_string(O.IntVal);
  case Operand::Kind::ConstFloat:
    return std::to_string(O.FloatVal);
  case Operand::Kind::Local:
    return "%" + (F ? F->Locals[O.Index].Name : std::to_string(O.Index));
  case Operand::Kind::Global:
    return "@" + M.Globals[O.Index].Name;
  case Operand::Kind::FuncRef:
    return "&" + M.Functions[O.Index]->Name;
  case Operand::Kind::RtParam:
    return "$" + std::to_string(O.Index);
  }
  return "?";
}

} // namespace

std::string IRModule::dump(const ParamSpace &Space) const {
  std::string Out;
  for (const GlobalVar &G : Globals) {
    Out += "global " + G.Name;
    if (G.IsArray)
      Out += "[" + std::to_string(G.ArraySize) + "]";
    Out += " : " + std::string(typeName(G.Type)) + "\n";
  }
  for (const auto &FPtr : Functions) {
    const IRFunction &F = *FPtr;
    Out += "func " + F.Name + " (" + std::to_string(F.NumParams) +
           " params) entry_count=" + F.EntryCount.toString(Space) + "\n";
    for (unsigned B = 0; B != F.Blocks.size(); ++B) {
      Out += "  bb" + std::to_string(B) +
             ":  ; count=" + F.Blocks[B].Count.toString(Space) + "\n";
      for (const Instr &I : F.Blocks[B].Instrs) {
        Out += "    ";
        if (I.Dst != KNone)
          Out += "%" + F.Locals[I.Dst].Name + " = ";
        Out += opcodeName(I.Op);
        if (I.Op == Opcode::Call)
          Out += " " + Functions[I.Callee]->Name;
        for (const Operand *O : {&I.A, &I.B, &I.C})
          if (!O->isNone())
            Out += " " + operandToString(*O, &F, *this);
        for (const Operand &Arg : I.Args)
          Out += " " + operandToString(Arg, &F, *this);
        if (I.Succ0 != KNone)
          Out += " -> bb" + std::to_string(I.Succ0);
        if (I.Succ1 != KNone)
          Out += ", bb" + std::to_string(I.Succ1);
        Out += "\n";
      }
    }
  }
  return Out;
}
