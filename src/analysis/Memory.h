//===- analysis/Memory.h - Abstract memory locations -----------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's memory abstraction (section 2.3): all memory a program may
/// touch is represented by a finite set of typed abstract locations. One
/// location exists per global, per local variable of each function (all
/// activations merged), per malloc site (all instances merged), and per
/// function (the target of `func` values). Locations are the "data items"
/// of the data-validity analysis and carry the symbolic sizes the cost
/// model charges for transfers.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_ANALYSIS_MEMORY_H
#define PACO_ANALYSIS_MEMORY_H

#include "ir/IR.h"

namespace paco {

/// One abstract memory location.
struct MemLocInfo {
  enum class Kind { Global, Local, Alloc, Func, Ret };

  Kind K = Kind::Global;
  unsigned FuncIdx = KNone; ///< Owning function for Local/Ret.
  unsigned Index = 0;       ///< Global/local/alloc-site/function index.
  std::string Name;
  TypeKind ElemType = TypeKind::Int;
  bool IsAggregate = false; ///< Array or allocation: writes are partial.
  bool IsDynamic = false;   ///< Malloc site: subject to registration cost.
  /// Symbolic total element count (array size, or per-allocation size
  /// times allocation count for malloc sites; 1 for scalars).
  LinExpr TotalElems;
  /// Symbolic execution count of the allocation statement (malloc sites
  /// only) -- the r(d) factor of the registration cost.
  LinExpr AllocCount;
  unsigned ElemBytes = 4;
};

/// Enumerates the abstract locations of a module and maps IR entities to
/// location ids.
class MemoryModel {
public:
  MemoryModel(const IRModule &M, ParamSpace &Space);

  unsigned numLocs() const { return static_cast<unsigned>(Locs.size()); }
  const MemLocInfo &loc(unsigned Id) const {
    assert(Id < Locs.size() && "location id out of range");
    return Locs[Id];
  }

  unsigned globalLoc(unsigned GlobalIdx) const {
    return GlobalBase + GlobalIdx;
  }
  unsigned localLoc(unsigned FuncIdx, unsigned LocalIdx) const {
    return LocalBase[FuncIdx] + LocalIdx;
  }
  unsigned allocLoc(unsigned Site) const { return AllocBase + Site; }
  unsigned funcLoc(unsigned FuncIdx) const { return FuncBase + FuncIdx; }
  /// Pseudo-location holding the return value of a function.
  unsigned retLoc(unsigned FuncIdx) const { return RetBase + FuncIdx; }

  /// Location of a Local/Global operand (asserts on other kinds).
  unsigned operandLoc(const Operand &O, unsigned FuncIdx) const;

  /// Transfer size of the location in bytes (symbolic).
  LinExpr byteSize(unsigned Id) const {
    return loc(Id).TotalElems * Rational(int64_t(loc(Id).ElemBytes));
  }

private:
  std::vector<MemLocInfo> Locs;
  unsigned GlobalBase = 0;
  std::vector<unsigned> LocalBase;
  unsigned AllocBase = 0;
  unsigned FuncBase = 0;
  unsigned RetBase = 0;
};

/// Bytes used by the cost model for one element of \p Ty (models a
/// 32-bit embedded target: int/pointers 4 bytes, double 8).
unsigned elementBytes(TypeKind Ty);

} // namespace paco

#endif // PACO_ANALYSIS_MEMORY_H
