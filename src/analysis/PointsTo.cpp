//===- analysis/PointsTo.cpp - Andersen-style points-to -------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include "obs/Trace.h"

using namespace paco;

std::vector<unsigned>
PointsToResult::callTargets(unsigned FuncVarLoc,
                            const MemoryModel &Memory) const {
  std::vector<unsigned> Targets;
  for (unsigned Loc : pointsTo(FuncVarLoc)) {
    const MemLocInfo &Info = Memory.loc(Loc);
    if (Info.K == MemLocInfo::Kind::Func)
      Targets.push_back(Info.Index);
  }
  return Targets;
}

namespace {

/// Inclusion constraints over location contents.
struct Constraint {
  enum class Kind {
    AddrOf,   ///< contents(Dst) includes {Loc}
    Copy,     ///< contents(Dst) includes contents(Src)
    Load,     ///< contents(Dst) includes contents(l) for l in contents(Src)
    Store,    ///< contents(l) includes contents(Src) for l in contents(Dst)
    StoreLit, ///< contents(l) includes {Loc} for l in contents(Dst)
  };
  Kind K;
  unsigned Dst = 0;
  unsigned Src = 0;
  unsigned Loc = 0;
};

class AndersenSolver {
public:
  AndersenSolver(const IRModule &M, const MemoryModel &Memory)
      : M(M), Memory(Memory), Result(Memory.numLocs()) {}

  PointsToResult solve();

private:
  void collectConstraints();
  void constraintsForInstr(const Instr &I, unsigned FuncIdx);
  /// Location of a value operand, or KNone for constants/params.
  unsigned valueLoc(const Operand &O, unsigned FuncIdx) const;

  void addAddrOf(unsigned Dst, unsigned Loc) {
    Constraints.push_back({Constraint::Kind::AddrOf, Dst, 0, Loc});
  }
  void addCopy(unsigned Dst, unsigned Src) {
    Constraints.push_back({Constraint::Kind::Copy, Dst, Src, 0});
  }

  const IRModule &M;
  const MemoryModel &Memory;
  PointsToResult Result;
  std::vector<Constraint> Constraints;
};

unsigned AndersenSolver::valueLoc(const Operand &O, unsigned FuncIdx) const {
  switch (O.K) {
  case Operand::Kind::Local:
    return Memory.localLoc(FuncIdx, O.Index);
  case Operand::Kind::Global:
    return Memory.globalLoc(O.Index);
  default:
    return KNone;
  }
}

void AndersenSolver::constraintsForInstr(const Instr &I, unsigned FuncIdx) {
  auto dstLoc = [&]() { return Memory.localLoc(FuncIdx, I.Dst); };
  switch (I.Op) {
  case Opcode::AddrOfVar:
    addAddrOf(dstLoc(), Memory.operandLoc(I.A, FuncIdx));
    return;
  case Opcode::Malloc:
    addAddrOf(dstLoc(), Memory.allocLoc(I.AllocSite));
    return;
  case Opcode::Copy:
  case Opcode::PtrAdd: {
    if (I.A.K == Operand::Kind::FuncRef) {
      addAddrOf(dstLoc(), Memory.funcLoc(I.A.Index));
      return;
    }
    unsigned Src = valueLoc(I.A, FuncIdx);
    if (Src != KNone)
      addCopy(dstLoc(), Src);
    return;
  }
  case Opcode::Load: {
    unsigned Ptr = valueLoc(I.A, FuncIdx);
    if (Ptr != KNone)
      Constraints.push_back({Constraint::Kind::Load, dstLoc(), Ptr, 0});
    return;
  }
  case Opcode::Store: {
    unsigned Ptr = valueLoc(I.A, FuncIdx);
    if (Ptr == KNone)
      return;
    if (I.C.K == Operand::Kind::FuncRef) {
      Constraints.push_back(
          {Constraint::Kind::StoreLit, Ptr, 0, Memory.funcLoc(I.C.Index)});
      return;
    }
    unsigned Val = valueLoc(I.C, FuncIdx);
    if (Val != KNone)
      Constraints.push_back({Constraint::Kind::Store, Ptr, Val, 0});
    return;
  }
  case Opcode::Call: {
    const IRFunction &Callee = *M.Functions[I.Callee];
    for (unsigned A = 0; A != I.Args.size(); ++A) {
      if (I.Args[A].K == Operand::Kind::FuncRef) {
        addAddrOf(Memory.localLoc(I.Callee, A),
                  Memory.funcLoc(I.Args[A].Index));
        continue;
      }
      unsigned Src = valueLoc(I.Args[A], FuncIdx);
      if (Src != KNone)
        addCopy(Memory.localLoc(I.Callee, A), Src);
    }
    if (I.Dst != KNone && Callee.RetType != TypeKind::Void)
      addCopy(dstLoc(), Memory.retLoc(I.Callee));
    return;
  }
  case Opcode::Ret: {
    if (I.A.K == Operand::Kind::FuncRef) {
      addAddrOf(Memory.retLoc(FuncIdx), Memory.funcLoc(I.A.Index));
      return;
    }
    unsigned Src = valueLoc(I.A, FuncIdx);
    if (Src != KNone)
      addCopy(Memory.retLoc(FuncIdx), Src);
    return;
  }
  default:
    return;
  }
}

void AndersenSolver::collectConstraints() {
  for (unsigned F = 0; F != M.Functions.size(); ++F)
    for (const BasicBlock &B : M.Functions[F]->Blocks)
      for (const Instr &I : B.Instrs)
        constraintsForInstr(I, F);
}

PointsToResult AndersenSolver::solve() {
  collectConstraints();
  // Simple iterate-to-fixpoint evaluation; the constraint systems the
  // benchmark programs generate are small enough that sophistication
  // would not pay for itself.
  bool Changed = true;
  auto includeInto = [this](unsigned Dst, const std::set<unsigned> &Src) {
    size_t Before = Result.contents(Dst).size();
    Result.contents(Dst).insert(Src.begin(), Src.end());
    return Result.contents(Dst).size() != Before;
  };
  while (Changed) {
    Changed = false;
    for (const Constraint &C : Constraints) {
      switch (C.K) {
      case Constraint::Kind::AddrOf:
        Changed |= Result.contents(C.Dst).insert(C.Loc).second;
        break;
      case Constraint::Kind::Copy:
        Changed |= includeInto(C.Dst, Result.contents(C.Src));
        break;
      case Constraint::Kind::Load: {
        std::set<unsigned> Pointees = Result.contents(C.Src);
        for (unsigned L : Pointees)
          Changed |= includeInto(C.Dst, Result.contents(L));
        break;
      }
      case Constraint::Kind::Store: {
        std::set<unsigned> Pointees = Result.contents(C.Dst);
        for (unsigned L : Pointees)
          Changed |= includeInto(L, Result.contents(C.Src));
        break;
      }
      case Constraint::Kind::StoreLit: {
        std::set<unsigned> Pointees = Result.contents(C.Dst);
        for (unsigned L : Pointees)
          Changed |= Result.contents(L).insert(C.Loc).second;
        break;
      }
      }
    }
  }
  return std::move(Result);
}

} // namespace

PointsToResult paco::runPointsTo(const IRModule &M,
                                 const MemoryModel &Memory) {
  obs::ScopedSpan Span("analysis.points_to", "analysis");
  AndersenSolver Solver(M, Memory);
  return Solver.solve();
}
