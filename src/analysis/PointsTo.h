//===- analysis/PointsTo.h - Andersen-style points-to ----------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow- and context-insensitive inclusion-based (Andersen) points-to
/// analysis over the abstract memory locations, as the paper uses for its
/// memory abstraction (section 5 cites Andersen's thesis). The analysis
/// tracks the *contents* of every location: which locations (or
/// functions) a pointer/func value stored there may reference. Indirect
/// call targets fall out of the contents of func-typed variables.
///
//===----------------------------------------------------------------------===//

#ifndef PACO_ANALYSIS_POINTSTO_H
#define PACO_ANALYSIS_POINTSTO_H

#include "analysis/Memory.h"

#include <set>

namespace paco {

/// Results: for each abstract location, the set of locations its stored
/// value may point to (function locations model func values).
class PointsToResult {
public:
  explicit PointsToResult(unsigned NumLocs) : Contents(NumLocs) {}

  const std::set<unsigned> &pointsTo(unsigned Loc) const {
    assert(Loc < Contents.size());
    return Contents[Loc];
  }

  /// Functions an indirect call through \p FuncVarLoc may invoke.
  std::vector<unsigned> callTargets(unsigned FuncVarLoc,
                                    const MemoryModel &Memory) const;

  /// Mutable access for the solver.
  std::set<unsigned> &contents(unsigned Loc) { return Contents[Loc]; }

private:
  std::vector<std::set<unsigned>> Contents;
};

/// Runs the analysis to fixpoint.
PointsToResult runPointsTo(const IRModule &M, const MemoryModel &Memory);

} // namespace paco

#endif // PACO_ANALYSIS_POINTSTO_H
