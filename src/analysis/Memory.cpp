//===- analysis/Memory.cpp - Abstract memory locations --------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Memory.h"

#include "obs/Trace.h"

using namespace paco;

unsigned paco::elementBytes(TypeKind Ty) {
  switch (Ty) {
  case TypeKind::Double:
    return 8;
  case TypeKind::Void:
  case TypeKind::Int:
  case TypeKind::IntPtr:
  case TypeKind::DoublePtr:
  case TypeKind::Func:
    return 4;
  }
  return 4;
}

MemoryModel::MemoryModel(const IRModule &M, ParamSpace &Space) {
  obs::ScopedSpan Span("analysis.memory_model", "analysis");
  GlobalBase = 0;
  for (unsigned G = 0; G != M.Globals.size(); ++G) {
    const GlobalVar &Var = M.Globals[G];
    MemLocInfo Info;
    Info.K = MemLocInfo::Kind::Global;
    Info.Index = G;
    Info.Name = Var.Name;
    Info.ElemType = Var.Type;
    Info.IsAggregate = Var.IsArray;
    Info.TotalElems =
        LinExpr::constant(Var.IsArray ? Var.ArraySize : 1);
    Info.ElemBytes = elementBytes(Var.Type);
    Locs.push_back(std::move(Info));
  }
  LocalBase.resize(M.Functions.size());
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    LocalBase[F] = static_cast<unsigned>(Locs.size());
    const IRFunction &Func = *M.Functions[F];
    for (unsigned L = 0; L != Func.Locals.size(); ++L) {
      const LocalVar &Var = Func.Locals[L];
      MemLocInfo Info;
      Info.K = MemLocInfo::Kind::Local;
      Info.FuncIdx = F;
      Info.Index = L;
      Info.Name = Func.Name + "." + Var.Name;
      Info.ElemType = Var.Type;
      Info.IsAggregate = Var.IsArray;
      Info.TotalElems =
          LinExpr::constant(Var.IsArray ? Var.ArraySize : 1);
      Info.ElemBytes = elementBytes(Var.Type);
      Locs.push_back(std::move(Info));
    }
  }
  AllocBase = static_cast<unsigned>(Locs.size());
  for (unsigned S = 0; S != M.AllocSites.size(); ++S) {
    const AllocSiteInfo &Site = M.AllocSites[S];
    MemLocInfo Info;
    Info.K = MemLocInfo::Kind::Alloc;
    Info.Index = S;
    Info.Name = "alloc@" + Site.Loc.toString();
    Info.ElemType = Site.ElemType;
    Info.IsAggregate = true;
    Info.IsDynamic = true;
    // All run-time instances of the site fold into one location, so its
    // transferable size is size-per-allocation times allocation count
    // (the paper's s = r * S(h) flow constraint).
    Info.TotalElems = LinExpr::mul(Site.SizeElems, Site.ExecCount, Space);
    Info.AllocCount = Site.ExecCount;
    Info.ElemBytes = elementBytes(Site.ElemType);
    Locs.push_back(std::move(Info));
  }
  FuncBase = static_cast<unsigned>(Locs.size());
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    MemLocInfo Info;
    Info.K = MemLocInfo::Kind::Func;
    Info.Index = F;
    Info.Name = "&" + M.Functions[F]->Name;
    Info.ElemType = TypeKind::Func;
    Info.TotalElems = LinExpr::constant(1);
    Locs.push_back(std::move(Info));
  }
  RetBase = static_cast<unsigned>(Locs.size());
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    MemLocInfo Info;
    Info.K = MemLocInfo::Kind::Ret;
    Info.FuncIdx = F;
    Info.Index = F;
    Info.Name = M.Functions[F]->Name + ".ret";
    Info.ElemType = M.Functions[F]->RetType == TypeKind::Void
                        ? TypeKind::Int
                        : M.Functions[F]->RetType;
    Info.TotalElems = LinExpr::constant(1);
    Info.ElemBytes = elementBytes(Info.ElemType);
    Locs.push_back(std::move(Info));
  }
}

unsigned MemoryModel::operandLoc(const Operand &O, unsigned FuncIdx) const {
  if (O.K == Operand::Kind::Global)
    return globalLoc(O.Index);
  assert(O.K == Operand::Kind::Local && "operand names no location");
  return localLoc(FuncIdx, O.Index);
}
