//===- tcfg/TaskGraph.cpp - Task control flow graph (Algorithm 1) ---------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tcfg/TaskGraph.h"

#include "obs/Trace.h"

#include <queue>

using namespace paco;

std::string TCFG::dump(const ParamSpace &Space) const {
  std::string Out;
  for (unsigned T = 0; T != Tasks.size(); ++T) {
    Out += "task " + std::to_string(T) + " [" + Tasks[T].Label + "]";
    if (Tasks[T].HasIO)
      Out += " io";
    Out += " units=" + Tasks[T].ComputeUnits.toString(Space) + "\n";
  }
  for (const auto &[Edge, Count] : Edges)
    Out += "  " + std::to_string(Edge.first) + " -> " +
           std::to_string(Edge.second) + " x" + Count.toString(Space) + "\n";
  return Out;
}

namespace {

/// Working data for Algorithm 1 at block granularity.
class TCFGBuilder {
public:
  TCFGBuilder(const IRModule &M, const MemoryModel &Memory,
              const PointsToResult &PT)
      : M(M), Memory(Memory), PT(PT) {}

  TCFG build();

private:
  void computeReachableFunctions();
  void buildBlockGraph();
  void runAlgorithm1();
  void formTasks(TCFG &Out);
  void addTCFGEdges(TCFG &Out);

  std::vector<unsigned> indirectTargets(unsigned FuncIdx,
                                        const Instr &I) const {
    unsigned VarLoc = I.A.K == Operand::Kind::Global
                          ? Memory.globalLoc(I.A.Index)
                          : Memory.localLoc(FuncIdx, I.A.Index);
    return PT.callTargets(VarLoc, Memory);
  }

  const IRModule &M;
  const MemoryModel &Memory;
  const PointsToResult &PT;

  std::vector<bool> FuncReachable;
  std::vector<unsigned> FuncOffset;
  unsigned NumBlocks = 0;

  // Per global block id:
  std::vector<bool> BlockLive;             ///< Reachable within function.
  std::vector<std::vector<unsigned>> PropSuccs; ///< Intra-function edges.
  std::vector<std::vector<unsigned>> PropPreds;
  std::vector<bool> IsHeader;
  std::vector<unsigned> Header;

  struct CallSite {
    unsigned CallBlock;
    unsigned ContBlock;
    unsigned Callee;
  };
  std::vector<CallSite> CallSites;
  std::vector<std::vector<unsigned>> RetBlocks; ///< Per function.
};

void TCFGBuilder::computeReachableFunctions() {
  FuncReachable.assign(M.Functions.size(), false);
  if (M.MainIndex == KNone)
    return;
  std::queue<unsigned> Work;
  FuncReachable[M.MainIndex] = true;
  Work.push(M.MainIndex);
  while (!Work.empty()) {
    unsigned F = Work.front();
    Work.pop();
    for (const BasicBlock &B : M.Functions[F]->Blocks)
      for (const Instr &I : B.Instrs) {
        std::vector<unsigned> Callees;
        if (I.Op == Opcode::Call)
          Callees.push_back(I.Callee);
        else if (I.Op == Opcode::CallInd)
          Callees = indirectTargets(F, I);
        for (unsigned Callee : Callees)
          if (!FuncReachable[Callee]) {
            FuncReachable[Callee] = true;
            Work.push(Callee);
          }
      }
  }
}

void TCFGBuilder::buildBlockGraph() {
  FuncOffset.assign(M.Functions.size(), 0);
  NumBlocks = 0;
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    FuncOffset[F] = NumBlocks;
    NumBlocks += static_cast<unsigned>(M.Functions[F]->Blocks.size());
  }
  PropSuccs.assign(NumBlocks, {});
  PropPreds.assign(NumBlocks, {});
  BlockLive.assign(NumBlocks, false);
  RetBlocks.assign(M.Functions.size(), {});

  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    if (!FuncReachable[F])
      continue;
    const IRFunction &Func = *M.Functions[F];
    for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
      unsigned Gid = FuncOffset[F] + B;
      const Instr &Term = Func.Blocks[B].terminator();
      switch (Term.Op) {
      case Opcode::Br:
        PropSuccs[Gid] = {FuncOffset[F] + Term.Succ0,
                          FuncOffset[F] + Term.Succ1};
        break;
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::CallInd:
        PropSuccs[Gid] = {FuncOffset[F] + Term.Succ0};
        break;
      case Opcode::Ret:
        break;
      default:
        assert(false && "block without terminator");
      }
    }
    // Intra-function liveness from the entry block.
    std::queue<unsigned> Work;
    unsigned Entry = FuncOffset[F];
    BlockLive[Entry] = true;
    Work.push(Entry);
    while (!Work.empty()) {
      unsigned Gid = Work.front();
      Work.pop();
      for (unsigned Succ : PropSuccs[Gid])
        if (!BlockLive[Succ]) {
          BlockLive[Succ] = true;
          Work.push(Succ);
        }
    }
    // Call sites and return blocks matter only when they can execute.
    for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
      unsigned Gid = FuncOffset[F] + B;
      if (!BlockLive[Gid])
        continue;
      const Instr &Term = Func.Blocks[B].terminator();
      if (Term.Op == Opcode::Call) {
        CallSites.push_back({Gid, FuncOffset[F] + Term.Succ0, Term.Callee});
      } else if (Term.Op == Opcode::CallInd) {
        for (unsigned Callee : indirectTargets(F, Term))
          CallSites.push_back({Gid, FuncOffset[F] + Term.Succ0, Callee});
      } else if (Term.Op == Opcode::Ret) {
        RetBlocks[F].push_back(Gid);
      }
    }
  }
  for (unsigned Gid = 0; Gid != NumBlocks; ++Gid)
    for (unsigned Succ : PropSuccs[Gid])
      if (BlockLive[Gid])
        PropPreds[Succ].push_back(Gid);
}

void TCFGBuilder::runAlgorithm1() {
  IsHeader.assign(NumBlocks, false);
  for (unsigned F = 0; F != M.Functions.size(); ++F)
    if (FuncReachable[F])
      IsHeader[FuncOffset[F]] = true;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Assign each live block the header it traces back to; a block fed
    // by two different tasks must itself become a header.
    Header.assign(NumBlocks, KNone);
    bool Stable = false;
    while (!Stable) {
      Stable = true;
      for (unsigned Gid = 0; Gid != NumBlocks; ++Gid) {
        if (!BlockLive[Gid])
          continue;
        if (IsHeader[Gid]) {
          if (Header[Gid] != Gid) {
            Header[Gid] = Gid;
            Stable = false;
          }
          continue;
        }
        for (unsigned Pred : PropPreds[Gid]) {
          if (Header[Pred] == KNone)
            continue;
          if (Header[Gid] == KNone) {
            Header[Gid] = Header[Pred];
            Stable = false;
          } else if (Header[Gid] != Header[Pred]) {
            IsHeader[Gid] = true;
            Header[Gid] = Gid;
            Stable = false;
            Changed = true;
          }
        }
      }
    }

    // Branch rules: a branch whose source and target lie in different
    // tasks makes both the target and the statement following the branch
    // task headers (Algorithm 1's inner loop).
    auto makeHeader = [&](unsigned Gid) {
      if (!IsHeader[Gid]) {
        IsHeader[Gid] = true;
        Changed = true;
      }
    };
    for (unsigned F = 0; F != M.Functions.size(); ++F) {
      if (!FuncReachable[F])
        continue;
      const IRFunction &Func = *M.Functions[F];
      for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
        unsigned Gid = FuncOffset[F] + B;
        if (!BlockLive[Gid])
          continue;
        const Instr &Term = Func.Blocks[B].terminator();
        switch (Term.Op) {
        case Opcode::Br: {
          unsigned T0 = FuncOffset[F] + Term.Succ0;
          unsigned T1 = FuncOffset[F] + Term.Succ1;
          if (Header[Gid] != Header[T0] || Header[Gid] != Header[T1]) {
            if (Header[Gid] != Header[T0])
              makeHeader(T0);
            if (Header[Gid] != Header[T1])
              makeHeader(T1);
          }
          break;
        }
        case Opcode::Jmp: {
          unsigned T0 = FuncOffset[F] + Term.Succ0;
          if (Header[Gid] != Header[T0])
            makeHeader(T0);
          break;
        }
        case Opcode::Call:
        case Opcode::CallInd:
          // The callee entry is always a different task; both it and the
          // continuation become headers.
          makeHeader(FuncOffset[F] + Term.Succ0);
          break;
        case Opcode::Ret:
          break;
        default:
          break;
        }
      }
    }
    // Return continuations: every call continuation is a branch target of
    // the callee's return, which crosses functions and thus tasks.
    for (const CallSite &Site : CallSites)
      makeHeader(Site.ContBlock);
  }
}

void TCFGBuilder::formTasks(TCFG &Out) {
  Out.FuncOffset = FuncOffset;
  Out.BlockTask.assign(NumBlocks, KNone);
  std::vector<unsigned> HeaderTask(NumBlocks, KNone);
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    if (!FuncReachable[F])
      continue;
    const IRFunction &Func = *M.Functions[F];
    for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
      unsigned Gid = FuncOffset[F] + B;
      if (!BlockLive[Gid] || !IsHeader[Gid])
        continue;
      TCFG::Task Task;
      Task.FuncIdx = F;
      Task.Label = Func.Name + "#" + std::to_string(B);
      HeaderTask[Gid] = static_cast<unsigned>(Out.Tasks.size());
      Out.Tasks.push_back(std::move(Task));
    }
  }
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    if (!FuncReachable[F])
      continue;
    const IRFunction &Func = *M.Functions[F];
    for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
      unsigned Gid = FuncOffset[F] + B;
      if (!BlockLive[Gid])
        continue;
      unsigned TaskId = HeaderTask[Header[Gid]];
      Out.BlockTask[Gid] = TaskId;
      TCFG::Task &Task = Out.Tasks[TaskId];
      if (Gid == Header[Gid]) {
        Task.Blocks.insert(Task.Blocks.begin(), Gid);
      } else {
        Task.Blocks.push_back(Gid);
      }
      LinExpr Units =
          Func.Blocks[B].Count *
          Rational(static_cast<int64_t>(Func.instructionCount(B)));
      Task.ComputeUnits += Units;
      for (const Instr &I : Func.Blocks[B].Instrs)
        switch (I.Op) {
        case Opcode::IoRead:
        case Opcode::IoWrite:
        case Opcode::IoReadBuf:
        case Opcode::IoWriteBuf:
          Task.HasIO = true;
          break;
        default:
          break;
        }
    }
  }

  TCFG::Task Entry;
  Entry.Label = "<entry>";
  Entry.HasIO = true;
  Entry.IsVirtual = true;
  Out.EntryTask = static_cast<unsigned>(Out.Tasks.size());
  Out.Tasks.push_back(std::move(Entry));

  TCFG::Task Exit;
  Exit.Label = "<exit>";
  Exit.HasIO = true;
  Exit.IsVirtual = true;
  Out.ExitTask = static_cast<unsigned>(Out.Tasks.size());
  Out.Tasks.push_back(std::move(Exit));
}

void TCFGBuilder::addTCFGEdges(TCFG &Out) {
  auto addEdge = [&Out](unsigned From, unsigned To, const LinExpr &Count) {
    if (From == To)
      return;
    auto [It, Inserted] =
        Out.Edges.emplace(std::make_pair(From, To), Count);
    if (!Inserted)
      It->second += Count;
  };

  // Intra-function branch edges (call->continuation is *not* a TCFG edge;
  // control reaches the continuation through the callee's return).
  std::vector<std::vector<unsigned>> CallBlocks(NumBlocks);
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    if (!FuncReachable[F])
      continue;
    const IRFunction &Func = *M.Functions[F];
    for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
      unsigned Gid = FuncOffset[F] + B;
      if (!BlockLive[Gid])
        continue;
      const Instr &Term = Func.Blocks[B].terminator();
      if (Term.Op != Opcode::Br && Term.Op != Opcode::Jmp)
        continue;
      for (unsigned Succ : Func.successors(B)) {
        unsigned SuccGid = FuncOffset[F] + Succ;
        if (Out.BlockTask[Gid] == Out.BlockTask[SuccGid])
          continue;
        auto CountIt = Func.EdgeCounts.find({B, Succ});
        LinExpr Count = CountIt != Func.EdgeCounts.end() ? CountIt->second
                                                         : LinExpr();
        addEdge(Out.BlockTask[Gid], Out.BlockTask[SuccGid], Count);
      }
    }
  }

  // Call edges: caller block -> callee entry task; and return edges:
  // callee return blocks -> continuation task.
  std::map<unsigned, unsigned> SiteCountPerCallee;
  for (const CallSite &Site : CallSites)
    ++SiteCountPerCallee[Site.Callee];
  for (const CallSite &Site : CallSites) {
    unsigned CallerFunc = KNone;
    for (unsigned F = 0; F != M.Functions.size(); ++F)
      if (Site.CallBlock >= FuncOffset[F] &&
          (F + 1 == M.Functions.size() ||
           Site.CallBlock < FuncOffset[F + 1]))
        CallerFunc = F;
    const IRFunction &Caller = *M.Functions[CallerFunc];
    LinExpr CallCount =
        Caller.Blocks[Site.CallBlock - FuncOffset[CallerFunc]].Count;
    unsigned CalleeEntryGid = FuncOffset[Site.Callee];
    addEdge(Out.BlockTask[Site.CallBlock], Out.BlockTask[CalleeEntryGid],
            CallCount);
    bool SingleSite = SiteCountPerCallee[Site.Callee] == 1;
    for (unsigned RetGid : RetBlocks[Site.Callee]) {
      const IRFunction &Callee = *M.Functions[Site.Callee];
      LinExpr RetCount =
          SingleSite ? Callee.Blocks[RetGid - FuncOffset[Site.Callee]].Count
                     : CallCount;
      addEdge(Out.BlockTask[RetGid], Out.BlockTask[Site.ContBlock],
              RetCount);
    }
  }

  // Virtual entry and exit.
  if (M.MainIndex != KNone && FuncReachable[M.MainIndex]) {
    unsigned MainEntryGid = FuncOffset[M.MainIndex];
    addEdge(Out.EntryTask, Out.BlockTask[MainEntryGid],
            LinExpr::constant(1));
    const IRFunction &Main = *M.Functions[M.MainIndex];
    for (unsigned RetGid : RetBlocks[M.MainIndex])
      addEdge(Out.BlockTask[RetGid], Out.ExitTask,
              Main.Blocks[RetGid - FuncOffset[M.MainIndex]].Count);
  }
}

TCFG TCFGBuilder::build() {
  TCFG Out;
  computeReachableFunctions();
  buildBlockGraph();
  runAlgorithm1();
  formTasks(Out);
  addTCFGEdges(Out);
  return Out;
}

} // namespace

TCFG paco::buildTCFG(const IRModule &M, const MemoryModel &Memory,
                     const PointsToResult &PT) {
  obs::ScopedSpan Span("tcfg.build", "tcfg");
  TCFGBuilder Builder(M, Memory, PT);
  TCFG Graph = Builder.build();
  Span.arg("tasks", static_cast<uint64_t>(Graph.Tasks.size()));
  Span.arg("edges", static_cast<uint64_t>(Graph.Edges.size()));
  obs::StatsRegistry::global().counter("tcfg.tasks").add(Graph.Tasks.size());
  obs::StatsRegistry::global().counter("tcfg.edges").add(Graph.Edges.size());
  return Graph;
}
