//===- tcfg/TaskGraph.h - Task control flow graph (Algorithm 1) -*- C++ -*-=//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Task formation and the Task Control Flow Graph (paper section 2.1,
/// Algorithm 1), computed at basic-block granularity: a task is a maximal
/// single-header group of blocks within one function; function calls,
/// returns, and any branch that crosses tasks are task branches. Two
/// virtual tasks bracket the program: the entry task (on the client,
/// produces all initialized global data) and the exit task (on the
/// client, receives control when main returns).
///
//===----------------------------------------------------------------------===//

#ifndef PACO_TCFG_TASKGRAPH_H
#define PACO_TCFG_TASKGRAPH_H

#include "analysis/PointsTo.h"

#include <map>

namespace paco {

/// The task control flow graph.
class TCFG {
public:
  struct Task {
    std::string Label;
    /// Global block ids belonging to this task (header first). Empty for
    /// the virtual entry/exit tasks.
    std::vector<unsigned> Blocks;
    unsigned FuncIdx = KNone; ///< Owning function; KNone for virtual.
    bool HasIO = false;       ///< Performs I/O: pinned to the client.
    bool IsVirtual = false;
    /// Symbolic total instruction executions in this task.
    LinExpr ComputeUnits;
  };

  std::vector<Task> Tasks;
  /// Edge traversal counts; key is (from task, to task).
  std::map<std::pair<unsigned, unsigned>, LinExpr> Edges;
  unsigned EntryTask = KNone;
  unsigned ExitTask = KNone;

  /// Per global block id: the owning task.
  std::vector<unsigned> BlockTask;
  /// Global block id = FuncOffset[f] + local block index.
  std::vector<unsigned> FuncOffset;

  unsigned numTasks() const { return static_cast<unsigned>(Tasks.size()); }
  unsigned blockId(unsigned Func, unsigned Block) const {
    return FuncOffset[Func] + Block;
  }
  unsigned taskOfBlock(unsigned Func, unsigned Block) const {
    return BlockTask[blockId(Func, Block)];
  }

  /// Renders tasks and edges for debugging.
  std::string dump(const ParamSpace &Space) const;
};

/// Runs Algorithm 1 over the module. \p PT resolves indirect call
/// targets. Only functions reachable from main are included.
TCFG buildTCFG(const IRModule &M, const MemoryModel &Memory,
               const PointsToResult &PT);

} // namespace paco

#endif // PACO_TCFG_TASKGRAPH_H
