//===- tcfg/TaskAccess.h - Per-task data access summaries ------*- C++ -*-===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Task-level data access summaries feeding the data-validity-state
/// constraints (paper section 2.4): for every (task, data item) pair,
/// whether the task has an upward-exposed read, whether it definitely
/// writes the item first (Write Constraint without the conservative
/// companion), whether it possibly/partially writes it (Conservative
/// Constraint), and whether it accesses the item at all (Data Access
/// State Constraint / registration).
///
//===----------------------------------------------------------------------===//

#ifndef PACO_TCFG_TASKACCESS_H
#define PACO_TCFG_TASKACCESS_H

#include "tcfg/TaskGraph.h"

namespace paco {

/// Access flags of one (task, data item) pair.
struct TaskAccessFlags {
  /// A read of the item may execute before any write within the task.
  bool UpwardRead = false;
  /// The item is definitely overwritten before any weaker access (the
  /// first write in the task header is a definite full write).
  bool DefWrite = false;
  /// The item is possibly or partially written (triggers the paper's
  /// Conservative Constraint).
  bool WeakWrite = false;
  /// The item is read or written at all (data access states Ns/Nc).
  bool Accessed = false;

  bool anyWrite() const { return DefWrite || WeakWrite; }
};

/// Summaries for all tasks. Data items are the Global/Local/Alloc/Ret
/// abstract locations; Func locations never appear.
class TaskAccessInfo {
public:
  explicit TaskAccessInfo(unsigned NumTasks) : PerTask(NumTasks) {}

  const std::map<unsigned, TaskAccessFlags> &flags(unsigned Task) const {
    return PerTask[Task];
  }
  std::map<unsigned, TaskAccessFlags> &flags(unsigned Task) {
    return PerTask[Task];
  }

  /// Convenience lookup; returns default flags when the task does not
  /// touch the item.
  TaskAccessFlags query(unsigned Task, unsigned Loc) const {
    auto It = PerTask[Task].find(Loc);
    return It == PerTask[Task].end() ? TaskAccessFlags() : It->second;
  }

  /// All data items some task accesses.
  std::vector<unsigned> accessedLocations() const;

private:
  std::vector<std::map<unsigned, TaskAccessFlags>> PerTask;
};

/// Computes the summaries. The virtual entry task definitely writes every
/// global (program data starts valid on the client only).
TaskAccessInfo computeTaskAccess(const IRModule &M, const MemoryModel &Memory,
                                 const PointsToResult &PT, const TCFG &Graph);

} // namespace paco

#endif // PACO_TCFG_TASKACCESS_H
