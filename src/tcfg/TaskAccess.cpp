//===- tcfg/TaskAccess.cpp - Per-task data access summaries ---------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tcfg/TaskAccess.h"

#include "obs/Trace.h"

using namespace paco;

std::vector<unsigned> TaskAccessInfo::accessedLocations() const {
  std::set<unsigned> Locs;
  for (const auto &TaskMap : PerTask)
    for (const auto &[Loc, Flags] : TaskMap)
      if (Flags.Accessed)
        Locs.insert(Loc);
  return std::vector<unsigned>(Locs.begin(), Locs.end());
}

namespace {

/// One memory access in program order within a block.
struct Access {
  enum class Kind { Read, DefWrite, WeakWrite };
  Kind K;
  unsigned Loc;
};

class AccessBuilder {
public:
  AccessBuilder(const IRModule &M, const MemoryModel &Memory,
                const PointsToResult &PT, const TCFG &Graph)
      : M(M), Memory(Memory), PT(PT), Graph(Graph) {}

  TaskAccessInfo build();

private:
  void instrAccesses(const Instr &I, unsigned FuncIdx,
                     std::vector<Access> &Out) const;
  void readOperand(const Operand &O, unsigned FuncIdx,
                   std::vector<Access> &Out) const;
  void pointeeAccess(const Operand &Ptr, unsigned FuncIdx, bool IsWrite,
                     std::vector<Access> &Out) const;
  bool isDataLoc(unsigned Loc) const {
    return Memory.loc(Loc).K != MemLocInfo::Kind::Func;
  }

  const IRModule &M;
  const MemoryModel &Memory;
  const PointsToResult &PT;
  const TCFG &Graph;
};

void AccessBuilder::readOperand(const Operand &O, unsigned FuncIdx,
                                std::vector<Access> &Out) const {
  if (O.K != Operand::Kind::Local && O.K != Operand::Kind::Global)
    return;
  Out.push_back({Access::Kind::Read, Memory.operandLoc(O, FuncIdx)});
}

void AccessBuilder::pointeeAccess(const Operand &Ptr, unsigned FuncIdx,
                                  bool IsWrite,
                                  std::vector<Access> &Out) const {
  if (Ptr.K != Operand::Kind::Local && Ptr.K != Operand::Kind::Global)
    return;
  unsigned PtrLoc = Memory.operandLoc(Ptr, FuncIdx);
  const std::set<unsigned> &Pointees = PT.pointsTo(PtrLoc);
  for (unsigned L : Pointees) {
    if (!isDataLoc(L))
      continue;
    if (!IsWrite) {
      Out.push_back({Access::Kind::Read, L});
      continue;
    }
    // A write through a pointer is definite only when the target is
    // unique and scalar; aggregates take partial writes, multiple
    // targets make the write possible (paper Figure 5).
    bool Definite = Pointees.size() == 1 && !Memory.loc(L).IsAggregate;
    Out.push_back(
        {Definite ? Access::Kind::DefWrite : Access::Kind::WeakWrite, L});
  }
}

void AccessBuilder::instrAccesses(const Instr &I, unsigned FuncIdx,
                                  std::vector<Access> &Out) const {
  auto writeDst = [&]() {
    if (I.Dst != KNone)
      Out.push_back(
          {Access::Kind::DefWrite, Memory.localLoc(FuncIdx, I.Dst)});
  };
  switch (I.Op) {
  case Opcode::AddrOfVar:
    // Taking an address reads no data.
    writeDst();
    return;
  case Opcode::Load:
    readOperand(I.A, FuncIdx, Out);
    readOperand(I.B, FuncIdx, Out);
    pointeeAccess(I.A, FuncIdx, /*IsWrite=*/false, Out);
    writeDst();
    return;
  case Opcode::Store:
    readOperand(I.A, FuncIdx, Out);
    readOperand(I.B, FuncIdx, Out);
    readOperand(I.C, FuncIdx, Out);
    pointeeAccess(I.A, FuncIdx, /*IsWrite=*/true, Out);
    return;
  case Opcode::Malloc:
    readOperand(I.A, FuncIdx, Out);
    // Fresh memory: the allocating host holds the only valid copy.
    Out.push_back({Access::Kind::DefWrite, Memory.allocLoc(I.AllocSite)});
    writeDst();
    return;
  case Opcode::IoRead:
    writeDst();
    return;
  case Opcode::IoWrite:
    readOperand(I.A, FuncIdx, Out);
    return;
  case Opcode::IoReadBuf:
    readOperand(I.A, FuncIdx, Out);
    readOperand(I.B, FuncIdx, Out);
    pointeeAccess(I.A, FuncIdx, /*IsWrite=*/true, Out);
    return;
  case Opcode::IoWriteBuf:
    readOperand(I.A, FuncIdx, Out);
    readOperand(I.B, FuncIdx, Out);
    pointeeAccess(I.A, FuncIdx, /*IsWrite=*/false, Out);
    return;
  case Opcode::Call: {
    for (unsigned A = 0; A != I.Args.size(); ++A) {
      readOperand(I.Args[A], FuncIdx, Out);
      Out.push_back(
          {Access::Kind::DefWrite, Memory.localLoc(I.Callee, A)});
    }
    return;
  }
  case Opcode::CallInd:
    readOperand(I.A, FuncIdx, Out);
    return;
  case Opcode::Ret:
    readOperand(I.A, FuncIdx, Out);
    if (!I.A.isNone())
      Out.push_back({Access::Kind::DefWrite, Memory.retLoc(FuncIdx)});
    return;
  default:
    readOperand(I.A, FuncIdx, Out);
    readOperand(I.B, FuncIdx, Out);
    readOperand(I.C, FuncIdx, Out);
    writeDst();
    return;
  }
}

TaskAccessInfo AccessBuilder::build() {
  TaskAccessInfo Info(Graph.numTasks());

  // Ordered accesses per global block id, with call-return effects (the
  // write of the call's destination from the callee's return value)
  // attributed to the continuation block, where they happen.
  std::vector<std::vector<Access>> BlockAccesses(Graph.BlockTask.size());
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    const IRFunction &Func = *M.Functions[F];
    for (unsigned B = 0; B != Func.Blocks.size(); ++B) {
      unsigned Gid = Graph.blockId(F, B);
      if (Gid >= Graph.BlockTask.size() ||
          Graph.BlockTask[Gid] == KNone)
        continue;
      std::vector<Access> &Accs = BlockAccesses[Gid];
      for (const Instr &I : Func.Blocks[B].Instrs)
        instrAccesses(I, F, Accs);
      const Instr &Term = Func.Blocks[B].terminator();
      if (Term.Op == Opcode::Call && Term.Dst != KNone) {
        unsigned ContGid = Graph.blockId(F, Term.Succ0);
        std::vector<Access> RetHalf = {
            {Access::Kind::Read, Memory.retLoc(Term.Callee)},
            {Access::Kind::DefWrite, Memory.localLoc(F, Term.Dst)}};
        std::vector<Access> &Cont = BlockAccesses[ContGid];
        Cont.insert(Cont.begin(), RetHalf.begin(), RetHalf.end());
      }
    }
  }

  // Aggregate per task.
  for (unsigned T = 0; T != Graph.numTasks(); ++T) {
    const TCFG::Task &Task = Graph.Tasks[T];
    std::map<unsigned, TaskAccessFlags> &Flags = Info.flags(T);
    for (unsigned Idx = 0; Idx != Task.Blocks.size(); ++Idx) {
      unsigned Gid = Task.Blocks[Idx];
      bool IsHeader = Idx == 0;
      // Within a block, a write (of either strength) covers later reads:
      // either the definite write validates the local copy, or the
      // conservative constraint of the weak write already demanded
      // validity at task entry.
      std::set<unsigned> CoveredByWrite;
      for (const Access &A : BlockAccesses[Gid]) {
        TaskAccessFlags &LocFlags = Flags[A.Loc];
        LocFlags.Accessed = true;
        switch (A.K) {
        case Access::Kind::Read:
          if (!CoveredByWrite.count(A.Loc))
            LocFlags.UpwardRead = true;
          break;
        case Access::Kind::DefWrite:
          // Only a first-write-definite in the header makes the task's
          // write definite overall (the header dominates the task).
          if (IsHeader && !LocFlags.anyWrite())
            LocFlags.DefWrite = true;
          else if (!LocFlags.DefWrite)
            LocFlags.WeakWrite = true;
          CoveredByWrite.insert(A.Loc);
          break;
        case Access::Kind::WeakWrite:
          if (!LocFlags.DefWrite)
            LocFlags.WeakWrite = true;
          CoveredByWrite.insert(A.Loc);
          break;
        }
      }
    }
  }

  // Virtual entry: definitely writes all globals.
  for (unsigned G = 0; G != M.Globals.size(); ++G) {
    TaskAccessFlags &Flags = Info.flags(Graph.EntryTask)[Memory.globalLoc(G)];
    Flags.DefWrite = true;
    Flags.Accessed = true;
  }
  return Info;
}

} // namespace

TaskAccessInfo paco::computeTaskAccess(const IRModule &M,
                                       const MemoryModel &Memory,
                                       const PointsToResult &PT,
                                       const TCFG &Graph) {
  obs::ScopedSpan Span("tcfg.task_access", "tcfg");
  AccessBuilder Builder(M, Memory, PT, Graph);
  return Builder.build();
}
