//===- examples/offload_explorer.cpp - CLI front end ----------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// A command-line driver for the offloading compiler: reads a MiniC file,
// runs the full parametric analysis, and prints the task graph, the
// partitioning choices with their regions, and the transformed-program
// dispatch. Optionally evaluates the dispatch at given parameter values,
// and executes the program on the simulated runtime -- including under an
// injected fault schedule (lossy link, disconnection windows), where the
// run retries with backoff and degrades gracefully to local execution.
//
//   offload_explorer program.mc [--params v1,v2,...] [--inputs v1,v2,...]
//       [--run] [--jobs N] [--no-opt] [--dump-ir[=before|after]]
//       [--dump-source]
//       [--fault-seed N] [--drop-rate P] [--jitter U]
//       [--disconnect-at MSG[:LEN]] [--policy fail-fast|retry-only|degrade]
//       [--adapt=static|react|closed-loop] [--drift=SPEC] [--crash=SPEC]
//       [--probe-period=N] [--probe-bytes=N] [--probe-budget=N]
//       [--ledger-budget=BYTES]
//       [--serve=FILE] [--serve-threads=N] [--serve-repeat=K]
//       [--trace=FILE] [--stats] [--audit=FILE] [--report]
//
// --serve replays a fleet request file through the compiled dispatch
// index behind the multi-threaded DispatchService: each non-empty,
// non-comment line holds one request as whitespace-separated runtime
// parameter values. The replay prints the per-choice histogram, the
// ns/query throughput, and the fast-path/exact-confirm/fallback mix, and
// cross-checks a subsample of answers against the linear pickChoice scan.
//
// A drift SPEC is a semicolon-separated list of phases, each
// "at=T[,comm=F][,server=F][,down]" with T and F integers or fractions
// (e.g. --drift="at=400,comm=16;at=900,comm=1"): from simulated time T
// on, communication costs scale by comm, server compute by server, and
// "down" forces the link dead until the next phase.
//
// A crash SPEC is a semicolon-separated list of server failures, each
// "at=T[,restart=T2]" (e.g. --crash="at=50000,restart=90000"): at
// simulated time T the server process dies, losing every server-resident
// data copy; with restart=T2 a blank server comes back at T2. Under
// --policy degrade the run rolls back to the last task boundary and
// restores lost items from the client-held recovery ledger; under
// --adapt closed-loop it then probes the server (priced messages, knobs
// above) and re-offloads when the remote cut wins again.
//
//===----------------------------------------------------------------------===//

#include "dispatch/DispatchService.h"
#include "interp/Interp.h"
#include "lang/PrintAST.h"
#include "obs/CostAudit.h"
#include "obs/EventLog.h"
#include "obs/Export.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "programs/Programs.h"
#include "runtime/SimTelemetry.h"
#include "transform/Transform.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace paco;

namespace {

std::vector<int64_t> parseList(const char *Text) {
  std::vector<int64_t> Values;
  std::stringstream List(Text);
  std::string Item;
  while (std::getline(List, Item, ','))
    Values.push_back(std::strtoll(Item.c_str(), nullptr, 10));
  return Values;
}

const char *adaptName(AdaptationPolicy Policy) {
  switch (Policy) {
  case AdaptationPolicy::Static:
    return "static";
  case AdaptationPolicy::ReactOnFailure:
    return "react";
  case AdaptationPolicy::ClosedLoop:
    return "closed-loop";
  }
  return "?";
}

std::string choiceLabel(unsigned Choice) {
  // Matches the 1-based numbering the dispatch table prints.
  return Choice == KNone ? std::string("local")
                         : "choice " + std::to_string(Choice + 1);
}

const char *policyName(FaultPolicy Policy) {
  switch (Policy) {
  case FaultPolicy::FailFast:
    return "fail-fast";
  case FaultPolicy::RetryOnly:
    return "retry-only";
  case FaultPolicy::DegradeToLocal:
    return "degrade";
  }
  return "?";
}

/// Verifies \p Path can be created for writing now, so a long analysis
/// never ends in silently dropped output (satellite: clear, early error).
bool checkWritable(const std::string &Path, const char *What) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s file %s\n", What,
                 Path.c_str());
    return false;
  }
  std::fclose(Out);
  return true;
}

/// Telemetry sinks and output paths shared between the explorer body and
/// main(): main flushes every requested file on every exit path -- a log
/// or trace of a failed run is exactly what one wants to look at -- and
/// turns a failed flush into a nonzero exit.
struct ObsOutputs {
  std::string TracePath;
  std::string LogPath;        ///< --log: structured JSONL event log.
  std::string MetricsPath;    ///< --metrics: Prometheus text exposition.
  std::string TimeseriesPath; ///< --timeseries: window JSONL.
  bool PrintStats = false;
  obs::EventLog Log;
  obs::TimeSeries ServeSeries{"serve", 512}; ///< One window per batch.
  obs::TimeSeries SimSeries{"sim", 256};     ///< Fixed sim-time windows.
};

/// Rewrites the Prometheus scrape file: lifetime registry families plus
/// the latest window of each active series.
bool flushMetrics(const ObsOutputs &Obs, std::string &Err) {
  std::string Text =
      obs::toPrometheusText(obs::StatsRegistry::global().snapshot());
  Text += obs::windowPrometheusText(Obs.ServeSeries);
  Text += obs::windowPrometheusText(Obs.SimSeries);
  return obs::writeTextFile(Obs.MetricsPath, Text, &Err);
}

/// Replays a fleet request file (one request per line, whitespace-
/// separated runtime parameter values; '#' starts a comment) through the
/// compiled dispatch index behind the multi-threaded service. Returns 0
/// on success, nonzero on malformed input or an index-vs-scan mismatch.
int serveRequests(const CompiledProgram &CP, const std::string &Path,
                  unsigned Threads, unsigned Repeat, ObsOutputs &Obs) {
  size_t NumParams = CP.AST->RuntimeParams.size();
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open request file %s\n",
                 Path.c_str());
    return 2;
  }
  std::vector<int64_t> Flat;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line.resize(Hash);
    std::stringstream Fields(Line);
    size_t Count = 0;
    int64_t V;
    while (Fields >> V) {
      Flat.push_back(V);
      ++Count;
    }
    if (Count == 0)
      continue; // blank or comment-only line
    if (Count != NumParams) {
      std::fprintf(stderr,
                   "error: %s:%zu: request has %zu value(s), program "
                   "declares %zu parameter(s)\n",
                   Path.c_str(), LineNo, Count, NumParams);
      return 2;
    }
  }
  size_t NumRequests = NumParams == 0 ? 0 : Flat.size() / NumParams;
  if (NumRequests == 0) {
    std::fprintf(stderr, "error: %s contains no requests\n", Path.c_str());
    return 2;
  }

  auto Start = std::chrono::steady_clock::now();
  DispatchIndex Index(CP.Partition, CP.Space,
                      static_cast<unsigned>(NumParams));
  DispatchService Service(Index, Threads);
  std::printf("\n== serving %zu request(s) x%u from %s (%u thread(s)) "
              "==\n%s\n",
              NumRequests, Repeat, Path.c_str(), Service.numThreads(),
              Index.describe().c_str());

  // One TimeWindow and one shard-complete event set per batch; the
  // scrape file is rewritten after every batch so a watcher polling it
  // sees live windowed rates, not just the end-of-run totals.
  bool WantWindows = !Obs.MetricsPath.empty() || !Obs.TimeseriesPath.empty();
  Service.attachTelemetry(WantWindows ? &Obs.ServeSeries : nullptr,
                          Obs.LogPath.empty() ? nullptr : &Obs.Log);

  std::vector<unsigned> Choices(NumRequests);
  Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R != Repeat; ++R) {
    Service.dispatchBatch(Flat.data(), NumRequests, NumParams,
                          Choices.data());
    if (!Obs.MetricsPath.empty()) {
      std::string Err;
      if (!flushMetrics(Obs, Err)) {
        std::fprintf(stderr, "error: cannot write metrics file: %s\n",
                     Err.c_str());
        return 1;
      }
    }
  }
  double Sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  DispatchService::Stats S = Service.totals();

  std::vector<uint64_t> Histogram(CP.Partition.Choices.size(), 0);
  for (unsigned C : Choices)
    ++Histogram[C];
  for (unsigned C = 0; C != Histogram.size(); ++C)
    if (Histogram[C])
      std::printf("  choice %-3u %8llu request(s)  (%5.1f%%)\n", C + 1,
                  static_cast<unsigned long long>(Histogram[C]),
                  100.0 * double(Histogram[C]) / double(NumRequests));
  double Total = double(NumRequests) * Repeat;
  std::printf("served %.0f queries in %.3fs: %.1f ns/query, %.2f Mq/s\n",
              Total, Sec, Sec * 1e9 / Total, Total / Sec / 1e6);
  std::printf("fast path %.1f%%  exact confirms %llu  fallbacks %llu\n",
              100.0 * double(S.FastQueries) / double(S.Queries),
              static_cast<unsigned long long>(S.ExactConfirms),
              static_cast<unsigned long long>(S.Fallbacks));

  // Cross-check a subsample against the linear scan the index replaces.
  size_t VerifyCount = std::min<size_t>(NumRequests, 1000);
  size_t Stride = NumRequests / VerifyCount;
  PickScratch Linear;
  size_t Mismatches = 0;
  for (size_t I = 0; I < NumRequests; I += Stride) {
    std::vector<int64_t> Req(Flat.begin() +
                                 static_cast<ptrdiff_t>(I * NumParams),
                             Flat.begin() +
                                 static_cast<ptrdiff_t>((I + 1) * NumParams));
    if (CP.Partition.pickChoice(CP.parameterPoint(Req), Linear) != Choices[I])
      ++Mismatches;
  }
  std::printf("verification: %zu sampled request(s), %zu mismatch(es)\n",
              (NumRequests + Stride - 1) / Stride, Mismatches);
  return Mismatches == 0 ? 0 : 1;
}

int runExplorer(int Argc, char **Argv, ObsOutputs &Obs) {
  std::string &TracePath = Obs.TracePath;
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: %s program.mc [--params v1,v2,...] "
                 "[--inputs v1,v2,...] [--run] [--jobs N] [--no-opt] "
                 "[--dump-ir[=before|after]] [--dump-source]\n"
                 "  fault injection: [--fault-seed N] [--drop-rate P] "
                 "[--jitter U] [--disconnect-at MSG[:LEN]]\n"
                 "                   [--policy fail-fast|retry-only|degrade]\n"
                 "  adaptation:      [--adapt=static|react|closed-loop] "
                 "[--drift=at=T[,comm=F][,server=F][,down];...]\n"
                 "  server failure:  [--crash=at=T[,restart=T2];...] "
                 "[--probe-period=N] [--probe-bytes=N] [--probe-budget=N]\n"
                 "                   [--ledger-budget=BYTES]\n"
                 "  fleet serving:   [--serve=FILE] [--serve-threads=N] "
                 "[--serve-repeat=K]\n"
                 "  observability:   [--trace=FILE] [--stats] "
                 "[--audit=FILE] [--report]\n"
                 "                   [--log=FILE] [--metrics=FILE] "
                 "[--timeseries=FILE] [--window=UNITS]\n",
                 Argv[0]);
    return 2;
  }
  // The program argument is either a MiniC file or the name of one of
  // the registered paper benchmarks (rawcaudio, fft, susan, ...).
  std::string Source;
  std::ifstream In(Argv[1]);
  if (In) {
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  } else {
    for (const programs::BenchProgram &P : programs::allPrograms())
      if (P.Name == std::string(Argv[1]))
        Source = P.Source;
    if (Source.empty()) {
      std::fprintf(stderr,
                   "error: cannot open %s (and no benchmark has that name)\n",
                   Argv[1]);
      return 2;
    }
  }

  bool DumpIR = false;
  bool DumpIRBefore = false;
  bool DumpSource = false;
  bool Run = false;
  bool Report = false;
  std::string AuditPath;
  std::vector<int64_t> Params;
  bool HaveParams = false;
  std::vector<int64_t> Inputs;
  FaultSpec Link;
  FaultPolicy Policy = FaultPolicy::DegradeToLocal;
  AdaptationOptions Adapt;
  DriftSchedule Drift;
  CrashSchedule Crash;
  uint64_t LedgerBudget = 1ull << 20;
  std::string ServePath;
  unsigned ServeThreads = 0; // 0 = hardware concurrency
  unsigned ServeRepeat = 1;
  int64_t WindowUnits = 65536; // --window: sim-time window width
  bool &PrintStats = Obs.PrintStats;
  ParametricOptions AnalysisOpts;
  PassOptions PassOpts;
  auto parseAdapt = [&](const char *Name) {
    if (std::strcmp(Name, "static") == 0)
      Adapt.Policy = AdaptationPolicy::Static;
    else if (std::strcmp(Name, "react") == 0)
      Adapt.Policy = AdaptationPolicy::ReactOnFailure;
    else if (std::strcmp(Name, "closed-loop") == 0)
      Adapt.Policy = AdaptationPolicy::ClosedLoop;
    else {
      std::fprintf(stderr,
                   "error: unknown adaptation policy %s (want "
                   "static|react|closed-loop)\n",
                   Name);
      return false;
    }
    Run = true;
    return true;
  };
  auto parseDrift = [&](const char *Spec) {
    std::string Err;
    if (DriftSchedule::parse(Spec, Drift, Err)) {
      Run = true;
      return true;
    }
    std::fprintf(stderr, "error: bad drift schedule: %s\n", Err.c_str());
    return false;
  };
  auto parseCrash = [&](const char *Spec) {
    std::string Err;
    if (CrashSchedule::parse(Spec, Crash, Err)) {
      Run = true;
      return true;
    }
    std::fprintf(stderr, "error: bad crash schedule: %s\n", Err.c_str());
    return false;
  };
  for (int A = 2; A < Argc; ++A) {
    if (std::strcmp(Argv[A], "--jobs") == 0 && A + 1 < Argc) {
      // 0 = hardware concurrency; any value yields identical results.
      AnalysisOpts.Threads =
          static_cast<unsigned>(std::strtoul(Argv[++A], nullptr, 10));
    } else if (std::strcmp(Argv[A], "--dump-ir") == 0 ||
               std::strcmp(Argv[A], "--dump-ir=after") == 0) {
      DumpIR = true;
    } else if (std::strcmp(Argv[A], "--dump-ir=before") == 0) {
      DumpIRBefore = true;
    } else if (std::strcmp(Argv[A], "--no-opt") == 0) {
      PassOpts.Enabled = false;
    } else if (std::strcmp(Argv[A], "--dump-source") == 0) {
      DumpSource = true;
    } else if (std::strcmp(Argv[A], "--run") == 0) {
      Run = true;
    } else if (std::strcmp(Argv[A], "--params") == 0 && A + 1 < Argc) {
      HaveParams = true;
      Params = parseList(Argv[++A]);
    } else if (std::strcmp(Argv[A], "--inputs") == 0 && A + 1 < Argc) {
      Inputs = parseList(Argv[++A]);
    } else if (std::strcmp(Argv[A], "--fault-seed") == 0 && A + 1 < Argc) {
      Link.Seed = std::strtoull(Argv[++A], nullptr, 10);
      Run = true;
    } else if (std::strcmp(Argv[A], "--drop-rate") == 0 && A + 1 < Argc) {
      Link.DropRate = std::strtod(Argv[++A], nullptr);
      Run = true;
    } else if (std::strcmp(Argv[A], "--jitter") == 0 && A + 1 < Argc) {
      Link.JitterUnits =
          static_cast<unsigned>(std::strtoul(Argv[++A], nullptr, 10));
      Run = true;
    } else if (std::strcmp(Argv[A], "--disconnect-at") == 0 && A + 1 < Argc) {
      char *End = nullptr;
      Link.DisconnectAt = std::strtoull(Argv[++A], &End, 10);
      Link.DisconnectLength =
          (End && *End == ':') ? std::strtoull(End + 1, nullptr, 10) : ~0ull;
      Run = true;
    } else if (std::strcmp(Argv[A], "--policy") == 0 && A + 1 < Argc) {
      const char *Name = Argv[++A];
      if (std::strcmp(Name, "fail-fast") == 0)
        Policy = FaultPolicy::FailFast;
      else if (std::strcmp(Name, "retry-only") == 0)
        Policy = FaultPolicy::RetryOnly;
      else if (std::strcmp(Name, "degrade") == 0)
        Policy = FaultPolicy::DegradeToLocal;
      else {
        std::fprintf(stderr, "error: unknown policy %s\n", Name);
        return 2;
      }
      Run = true;
    } else if (std::strncmp(Argv[A], "--adapt=", 8) == 0) {
      if (!parseAdapt(Argv[A] + 8))
        return 2;
    } else if (std::strcmp(Argv[A], "--adapt") == 0 && A + 1 < Argc) {
      if (!parseAdapt(Argv[++A]))
        return 2;
    } else if (std::strncmp(Argv[A], "--drift=", 8) == 0) {
      if (!parseDrift(Argv[A] + 8))
        return 2;
    } else if (std::strcmp(Argv[A], "--drift") == 0 && A + 1 < Argc) {
      if (!parseDrift(Argv[++A]))
        return 2;
    } else if (std::strncmp(Argv[A], "--crash=", 8) == 0) {
      if (!parseCrash(Argv[A] + 8))
        return 2;
    } else if (std::strcmp(Argv[A], "--crash") == 0 && A + 1 < Argc) {
      if (!parseCrash(Argv[++A]))
        return 2;
    } else if (std::strncmp(Argv[A], "--probe-period=", 15) == 0) {
      Adapt.ProbePeriodBoundaries =
          static_cast<unsigned>(std::strtoul(Argv[A] + 15, nullptr, 10));
      Run = true;
    } else if (std::strncmp(Argv[A], "--probe-bytes=", 14) == 0) {
      Adapt.ProbeBytes = std::strtoull(Argv[A] + 14, nullptr, 10);
      Run = true;
    } else if (std::strncmp(Argv[A], "--probe-budget=", 15) == 0) {
      Adapt.ProbeBudget =
          static_cast<unsigned>(std::strtoul(Argv[A] + 15, nullptr, 10));
      Run = true;
    } else if (std::strncmp(Argv[A], "--ledger-budget=", 16) == 0) {
      LedgerBudget = std::strtoull(Argv[A] + 16, nullptr, 10);
      Run = true;
    } else if (std::strncmp(Argv[A], "--serve=", 8) == 0) {
      ServePath = Argv[A] + 8;
    } else if (std::strcmp(Argv[A], "--serve") == 0 && A + 1 < Argc) {
      ServePath = Argv[++A];
    } else if (std::strncmp(Argv[A], "--serve-threads=", 16) == 0) {
      ServeThreads =
          static_cast<unsigned>(std::strtoul(Argv[A] + 16, nullptr, 10));
    } else if (std::strncmp(Argv[A], "--serve-repeat=", 15) == 0) {
      ServeRepeat = std::max(
          1u, static_cast<unsigned>(std::strtoul(Argv[A] + 15, nullptr, 10)));
    } else if (std::strncmp(Argv[A], "--trace=", 8) == 0) {
      TracePath = Argv[A] + 8;
    } else if (std::strcmp(Argv[A], "--trace") == 0 && A + 1 < Argc) {
      TracePath = Argv[++A];
    } else if (std::strncmp(Argv[A], "--log=", 6) == 0) {
      Obs.LogPath = Argv[A] + 6;
    } else if (std::strncmp(Argv[A], "--metrics=", 10) == 0) {
      Obs.MetricsPath = Argv[A] + 10;
    } else if (std::strncmp(Argv[A], "--timeseries=", 13) == 0) {
      Obs.TimeseriesPath = Argv[A] + 13;
    } else if (std::strncmp(Argv[A], "--window=", 9) == 0) {
      WindowUnits = std::strtoll(Argv[A] + 9, nullptr, 10);
      if (WindowUnits <= 0) {
        std::fprintf(stderr, "error: --window needs a positive width\n");
        return 2;
      }
    } else if (std::strcmp(Argv[A], "--stats") == 0) {
      PrintStats = true;
    } else if (std::strncmp(Argv[A], "--audit=", 8) == 0) {
      AuditPath = Argv[A] + 8;
      Run = true;
    } else if (std::strcmp(Argv[A], "--audit") == 0 && A + 1 < Argc) {
      AuditPath = Argv[++A];
      Run = true;
    } else if (std::strcmp(Argv[A], "--report") == 0) {
      Report = true;
      Run = true;
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", Argv[A]);
      return 2;
    }
  }
  // Reject malformed fault schedules now, with the same one-line style
  // the drift parser uses; a bad spec silently sampled for an hour is a
  // far worse failure mode.
  if (std::string Err = validateFaultSpec(Link); !Err.empty()) {
    std::fprintf(stderr, "error: bad fault spec: %s\n", Err.c_str());
    return 2;
  }
  // The closed loop adapts by degrading and re-offloading; fail-fast
  // forbids exactly that recovery, so the combination can only ever fail.
  if (Adapt.Policy == AdaptationPolicy::ClosedLoop &&
      Policy == FaultPolicy::FailFast) {
    std::fprintf(stderr, "error: --policy fail-fast conflicts with "
                         "--adapt closed-loop (the closed loop needs the "
                         "degrade/rollback path; use --policy degrade)\n");
    return 2;
  }
#ifdef PACO_DISABLE_OBS
  if (!Obs.LogPath.empty() || !Obs.MetricsPath.empty() ||
      !Obs.TimeseriesPath.empty()) {
    std::fprintf(stderr, "error: this build disabled observability "
                         "(PACO_DISABLE_OBS); --log/--metrics/--timeseries "
                         "are unavailable\n");
    Obs.LogPath.clear();
    Obs.MetricsPath.clear();
    Obs.TimeseriesPath.clear();
    return 2;
  }
#endif
  // Fail output paths now, before minutes of analysis, not after.
  if (!TracePath.empty() && !checkWritable(TracePath, "trace")) {
    TracePath.clear();
    return 2;
  }
  if (!AuditPath.empty() && !checkWritable(AuditPath, "audit"))
    return 2;
  if (!Obs.LogPath.empty() && !checkWritable(Obs.LogPath, "event log")) {
    Obs.LogPath.clear();
    return 2;
  }
  if (!Obs.MetricsPath.empty() && !checkWritable(Obs.MetricsPath, "metrics")) {
    Obs.MetricsPath.clear();
    return 2;
  }
  if (!Obs.TimeseriesPath.empty() &&
      !checkWritable(Obs.TimeseriesPath, "timeseries")) {
    Obs.TimeseriesPath.clear();
    return 2;
  }
  if (!TracePath.empty())
    obs::Tracer::global().enable();

  // Deterministic run id (no wall-clock data): same invocation, same id,
  // so two logs of the same run diff byte-for-byte.
  {
    std::string RunId = Argv[1];
    if (size_t Slash = RunId.find_last_of('/'); Slash != std::string::npos)
      RunId = RunId.substr(Slash + 1);
    RunId += ServePath.empty() ? (Run ? ":run" : ":analyze") : ":serve";
    for (int64_t V : Params) {
      RunId += ":";
      RunId += std::to_string(V);
    }
    if (!Link.faultFree()) {
      RunId += ":seed";
      RunId += std::to_string(Link.Seed);
    }
    Obs.Log = obs::EventLog(RunId);
  }

  std::string Diags;
  auto CP = compileForOffloading(Source, CostModel::defaults(), AnalysisOpts,
                                 &Diags, InlineOptions(), PassOpts);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.c_str());
    return 1;
  }
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.c_str());

  if (DumpSource)
    std::printf("// program after inlining (%u sites)\n%s\n",
                CP->InlinedSites, printProgram(*CP->AST).c_str());
  if (DumpIRBefore) {
    // Replay the front end (parse, inline, sema, symbolics, lower) into a
    // scratch space so the pre-optimization IR can be shown even though
    // the compiled program only keeps the optimized module.
    DiagEngine RawDiags;
    ParamSpace RawSpace;
    auto RawAST = parseMiniC(Source, RawDiags);
    if (RawAST)
      inlineSmallFunctions(*RawAST, InlineOptions());
    if (!RawAST || !runSema(*RawAST, RawDiags)) {
      std::fprintf(stderr, "%s", RawDiags.dump().c_str());
      return 1;
    }
    SymbolicInfo RawInfo = analyzeSymbolics(*RawAST, RawSpace, RawDiags);
    LowerResult Raw = lowerProgram(*RawAST, RawInfo, RawSpace, RawDiags);
    if (!Raw) {
      std::fprintf(stderr, "%s", Raw.error().toString().c_str());
      return 1;
    }
    std::printf("// IR before optimization\n%s\n",
                (*Raw)->dump(RawSpace).c_str());
  }
  if (DumpIR)
    std::printf("// IR after optimization%s\n%s\n",
                PassOpts.Enabled ? "" : " (--no-opt: pipeline disabled)",
                CP->Module->dump(CP->Space).c_str());
  if (PassOpts.Enabled)
    std::printf("optimizer: %u -> %u instr(s), %u -> %u cost term(s), "
                "%u monomial(s) merged into %u composite dim(s)\n",
                CP->OptStats.InstrsBefore, CP->OptStats.InstrsAfter,
                CP->OptStats.CostTermsBefore, CP->OptStats.CostTermsAfter,
                CP->OptStats.MonomialsMerged, CP->OptStats.MergedDims);

  std::printf("tasks (%u + entry/exit):\n", CP->numRealTasks());
  std::printf("%s\n", CP->Graph.dump(CP->Space).c_str());
  std::printf("network: %u nodes / %u arcs, simplified to %u / %u\n",
              CP->Partition.FullNodes, CP->Partition.FullArcs,
              CP->Partition.SolvedNodes, CP->Partition.SolvedArcs);
  std::printf("analysis time: %.2fs%s\n\n", CP->Partition.AnalysisSeconds,
              CP->Partition.Approximate ? " (sampled regions)" : "");
  std::printf("%s\n", CP->Partition.describe(CP->Space, CP->Graph).c_str());
  std::printf("%s", renderTransformedProgram(*CP).c_str());

  if (HaveParams && Params.size() != CP->AST->RuntimeParams.size()) {
    std::fprintf(stderr, "error: program declares %zu parameter(s)\n",
                 CP->AST->RuntimeParams.size());
    return 2;
  }
  if (HaveParams) {
    unsigned Choice = CP->Partition.pickChoice(CP->parameterPoint(Params));
    std::printf("\nat the given parameters, partitioning %u is optimal "
                "(cost %s)\n",
                Choice + 1,
                CP->Partition.Choices[Choice]
                    .CostExpr.evaluate(CP->parameterPoint(Params))
                    .toString()
                    .c_str());
  }

  if (!ServePath.empty()) {
    int Code = serveRequests(*CP, ServePath, ServeThreads, ServeRepeat, Obs);
    if (Code != 0 || !Run)
      return Code;
  }

  if (!Run)
    return 0;
  if (!HaveParams && !CP->AST->RuntimeParams.empty()) {
    std::fprintf(stderr,
                 "error: --run needs --params (program declares %zu)\n",
                 CP->AST->RuntimeParams.size());
    return 2;
  }

  // Reference outputs: the all-client run on a perfect link.
  ExecOptions LocalOpts;
  LocalOpts.Mode = ExecOptions::Placement::AllClient;
  LocalOpts.ParamValues = Params;
  LocalOpts.Inputs = Inputs;
  ExecResult Local = runProgram(*CP, LocalOpts);
  if (!Local.OK) {
    std::fprintf(stderr, "error: local run failed: %s\n",
                 Local.Error.c_str());
    return 1;
  }

  ExecOptions Opts;
  Opts.Mode = ExecOptions::Placement::Dispatch;
  Opts.ParamValues = Params;
  Opts.Inputs = Inputs;
  Opts.Link = Link;
  Opts.OnLinkFailure = Policy;
  Opts.Adapt = Adapt;
  Opts.Drift = Drift;
  Opts.Crash = Crash;
  Opts.LedgerBudgetBytes = LedgerBudget;
  // The timeline recorder feeds the cost audit, the text Gantt, the
  // simulated-time trace lanes and the sim-time telemetry windows; skip
  // it when nothing consumes it.
  RuntimeRecorder Recorder;
  bool WantSimWindows =
      !Obs.MetricsPath.empty() || !Obs.TimeseriesPath.empty();
  bool WantTimeline = !AuditPath.empty() || Report || !TracePath.empty() ||
                      WantSimWindows;
  if (WantTimeline)
    Opts.Recorder = &Recorder;
  if (!Obs.LogPath.empty())
    Opts.Events = &Obs.Log;
  ExecResult R = runProgram(*CP, Opts);
  if (WantSimWindows) {
    SimWindowOptions SimOpts;
    SimOpts.WindowUnits = Rational(WindowUnits);
    Obs.SimSeries = buildSimWindows(Recorder, SimOpts);
  }

  std::vector<std::string> TaskLabels, DataLabels;
  if (WantTimeline) {
    for (const TCFG::Task &Task : CP->Graph.Tasks)
      TaskLabels.push_back(Task.Label);
    for (unsigned D = 0; D != CP->Memory->numLocs(); ++D)
      DataLabels.push_back(CP->Memory->loc(D).Name);
    Recorder.emitChromeLanes(obs::Tracer::global(), TaskLabels, DataLabels);
  }
  if (!AuditPath.empty() || Report) {
    obs::CostAuditReport Audit = obs::auditRun(*CP, R, Params, &Recorder);
    if (!AuditPath.empty()) {
      std::string Err;
      if (!obs::writeTextFile(AuditPath, Audit.toJSON(), &Err)) {
        std::fprintf(stderr, "error: cannot write audit file: %s\n",
                     Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "audit: report written to %s\n",
                   AuditPath.c_str());
    }
    if (Report) {
      std::printf("\n%s", Audit.toText().c_str());
      std::printf("\n== runtime timeline (cost units) ==\n%s",
                  Recorder.renderTimeline(TaskLabels, DataLabels).c_str());
    }
  }

  std::printf("\n== adaptive run (policy %s, adapt %s", policyName(Policy),
              adaptName(Adapt.Policy));
  if (Drift.active())
    std::printf(", %zu drift phase(s)", Drift.Phases.size());
  if (Crash.active())
    std::printf(", %zu crash event(s)", Crash.Events.size());
  if (!Link.faultFree()) {
    std::printf(", seed %llu, drop %.3g",
                static_cast<unsigned long long>(Link.Seed), Link.DropRate);
    if (Link.JitterUnits)
      std::printf(", jitter %u", Link.JitterUnits);
    if (Link.DisconnectLength)
      std::printf(", disconnect @%llu",
                  static_cast<unsigned long long>(Link.DisconnectAt));
  }
  std::printf(") ==\n");
  if (!R.OK) {
    std::printf("run FAILED: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("choice %u  time %s (local %s)  energy %.4f J\n",
              R.ChoiceUsed == KNone ? 0 : R.ChoiceUsed + 1,
              R.Time.toString().c_str(), Local.Time.toString().c_str(),
              R.EnergyJoules);
  std::printf("client instrs %llu  server instrs %llu  migrations %llu  "
              "transfers %llu\n",
              static_cast<unsigned long long>(R.ClientInstrs),
              static_cast<unsigned long long>(R.ServerInstrs),
              static_cast<unsigned long long>(R.Migrations),
              static_cast<unsigned long long>(R.TransferCount));
  if (!Link.faultFree())
    std::printf("faults: timeouts %llu  retries %llu  fallbacks %llu  "
                "time lost %s%s\n",
                static_cast<unsigned long long>(R.Timeouts),
                static_cast<unsigned long long>(R.Retries),
                static_cast<unsigned long long>(R.Fallbacks),
                R.FaultTime.toString().c_str(),
                R.Degraded ? "  (degraded to local)" : "");
  if (R.Crashes || R.Probes)
    std::printf("recovery: %llu crash(es)  %llu restart(s)  %llu "
                "rollback(s)  %llu restored  %llu probe(s) (%llu lost)  "
                "%llu re-offload(s)  ledger %llu sync(s)/%llu B (peak "
                "%llu B, %llu evicted, %llu refetched)\n",
                static_cast<unsigned long long>(R.Crashes),
                static_cast<unsigned long long>(R.Restarts),
                static_cast<unsigned long long>(R.CrashRecoveries),
                static_cast<unsigned long long>(R.LedgerRestores),
                static_cast<unsigned long long>(R.Probes),
                static_cast<unsigned long long>(R.ProbeFailures),
                static_cast<unsigned long long>(R.Reoffloads),
                static_cast<unsigned long long>(R.LedgerSyncs),
                static_cast<unsigned long long>(R.LedgerSyncBytes),
                static_cast<unsigned long long>(R.LedgerPeakBytes),
                static_cast<unsigned long long>(R.LedgerEvictions),
                static_cast<unsigned long long>(R.LedgerRefetches));
  if (!R.Redispatches.empty() || R.FinalChoice != R.ChoiceUsed) {
    std::printf("adaptation: %zu re-dispatch(es), finished on %s\n",
                R.Redispatches.size(),
                choiceLabel(R.FinalChoice).c_str());
    for (const ExecResult::RedispatchEvent &E : R.Redispatches)
      std::printf("  t=%s: %s -> %s (predicted %s -> %s)\n",
                  E.At.toString().c_str(),
                  choiceLabel(E.FromChoice).c_str(),
                  choiceLabel(E.ToChoice).c_str(),
                  E.PredictedStay.toString().c_str(),
                  E.PredictedSwitch.toString().c_str());
  }
  std::printf("outputs: %zu value(s), %s the all-client run\n",
              R.Outputs.size(),
              R.Outputs == Local.Outputs ? "bit-identical to"
                                         : "DIFFERENT from");
  return R.Outputs == Local.Outputs ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  ObsOutputs Obs;
  int Code = runExplorer(Argc, Argv, Obs);
  // Emit observability output on every exit path, including failures --
  // a trace or event log of a failed run is exactly what one wants to
  // look at. Every sink write is checked end to end (open, write, flush,
  // close) and a failed flush turns into a nonzero exit: silently
  // dropped telemetry is worse than none. Human-readable stats go to
  // stderr: stdout stays machine-parseable (dispatch tables, --report
  // output) for scripts piping the tool.
  if (Obs.PrintStats)
    std::fprintf(stderr, "\n== stats ==\n%s",
                 obs::StatsRegistry::global().snapshot().toText().c_str());
  if (!Obs.TracePath.empty()) {
    if (!obs::Tracer::global().writeJSON(Obs.TracePath)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   Obs.TracePath.c_str());
      Code = Code ? Code : 1;
    } else {
      std::fprintf(stderr, "trace: %zu event(s) written to %s\n",
                   obs::Tracer::global().eventCount(), Obs.TracePath.c_str());
    }
  }
  std::string Err;
  if (!Obs.LogPath.empty()) {
    if (!obs::writeTextFile(Obs.LogPath, Obs.Log.toJSONL(), &Err)) {
      std::fprintf(stderr, "error: cannot write event log: %s\n",
                   Err.c_str());
      Code = Code ? Code : 1;
    } else {
      std::fprintf(stderr, "log: %zu event(s) written to %s\n",
                   Obs.Log.size(), Obs.LogPath.c_str());
    }
  }
  if (!Obs.TimeseriesPath.empty()) {
    std::string Text = Obs.ServeSeries.toJSONL();
    Text += Obs.SimSeries.toJSONL();
    if (!obs::writeTextFile(Obs.TimeseriesPath, Text, &Err)) {
      std::fprintf(stderr, "error: cannot write timeseries: %s\n",
                   Err.c_str());
      Code = Code ? Code : 1;
    } else {
      std::fprintf(stderr, "timeseries: %zu window(s) written to %s\n",
                   Obs.ServeSeries.size() + Obs.SimSeries.size(),
                   Obs.TimeseriesPath.c_str());
    }
  }
  if (!Obs.MetricsPath.empty()) {
    if (!flushMetrics(Obs, Err)) {
      std::fprintf(stderr, "error: cannot write metrics file: %s\n",
                   Err.c_str());
      Code = Code ? Code : 1;
    } else {
      std::fprintf(stderr, "metrics: exposition written to %s\n",
                   Obs.MetricsPath.c_str());
    }
  }
  return Code;
}
