//===- examples/offload_explorer.cpp - CLI front end ----------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// A command-line driver for the offloading compiler: reads a MiniC file,
// runs the full parametric analysis, and prints the task graph, the
// partitioning choices with their regions, and the transformed-program
// dispatch. Optionally evaluates the dispatch at given parameter values.
//
//   offload_explorer program.mc [--params v1,v2,...] [--dump-ir]
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/PrintAST.h"
#include "transform/Transform.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace paco;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: %s program.mc [--params v1,v2,...] [--dump-ir] "
                 "[--dump-source]\n",
                 Argv[0]);
    return 2;
  }
  std::ifstream In(Argv[1]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  bool DumpIR = false;
  bool DumpSource = false;
  std::vector<int64_t> Params;
  bool HaveParams = false;
  for (int A = 2; A < Argc; ++A) {
    if (std::strcmp(Argv[A], "--dump-ir") == 0) {
      DumpIR = true;
    } else if (std::strcmp(Argv[A], "--dump-source") == 0) {
      DumpSource = true;
    } else if (std::strcmp(Argv[A], "--params") == 0 && A + 1 < Argc) {
      HaveParams = true;
      std::stringstream List(Argv[++A]);
      std::string Item;
      while (std::getline(List, Item, ','))
        Params.push_back(std::strtoll(Item.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", Argv[A]);
      return 2;
    }
  }

  std::string Diags;
  auto CP = compileForOffloading(Buffer.str(), CostModel::defaults(), {},
                                 &Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.c_str());
    return 1;
  }
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.c_str());

  if (DumpSource)
    std::printf("// program after inlining (%u sites)\n%s\n",
                CP->InlinedSites, printProgram(*CP->AST).c_str());
  if (DumpIR)
    std::printf("%s\n", CP->Module->dump(CP->Space).c_str());

  std::printf("tasks (%u + entry/exit):\n", CP->numRealTasks());
  std::printf("%s\n", CP->Graph.dump(CP->Space).c_str());
  std::printf("network: %u nodes / %u arcs, simplified to %u / %u\n",
              CP->Partition.FullNodes, CP->Partition.FullArcs,
              CP->Partition.SolvedNodes, CP->Partition.SolvedArcs);
  std::printf("analysis time: %.2fs%s\n\n", CP->Partition.AnalysisSeconds,
              CP->Partition.Approximate ? " (sampled regions)" : "");
  std::printf("%s\n", CP->Partition.describe(CP->Space, CP->Graph).c_str());
  std::printf("%s", renderTransformedProgram(*CP).c_str());

  if (HaveParams) {
    if (Params.size() != CP->AST->RuntimeParams.size()) {
      std::fprintf(stderr, "error: program declares %zu parameter(s)\n",
                   CP->AST->RuntimeParams.size());
      return 2;
    }
    unsigned Choice = CP->Partition.pickChoice(CP->parameterPoint(Params));
    std::printf("\nat the given parameters, partitioning %u is optimal "
                "(cost %s)\n",
                Choice + 1,
                CP->Partition.Choices[Choice]
                    .CostExpr.evaluate(CP->parameterPoint(Params))
                    .toString()
                    .c_str());
  }
  return 0;
}
