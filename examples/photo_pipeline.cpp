//===- examples/photo_pipeline.cpp - Adaptive photo processing ------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// SUSAN-style photo processing on a handheld: small previews should stay
// on the device, full-size photos benefit from offloading the feature
// kernels. The adaptive dispatch switches automatically with the photo
// size and the selected modes (paper Figure 12's scenario).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "programs/Programs.h"

#include <cstdio>

using namespace paco;
using namespace paco::programs;

int main() {
  std::printf("== adaptive photo pipeline (SUSAN) ==\n\n");
  const BenchProgram &Prog = programByName("susan");
  std::string Diags;
  auto CP = compileForOffloading(Prog.Source, CostModel::defaults(), {},
                                 &Diags);
  if (!CP) {
    std::fprintf(stderr, "compilation failed:\n%s", Diags.c_str());
    return 1;
  }
  std::printf("tasks: %u  choices: %zu  distinct partitionings: %u%s\n\n",
              CP->numRealTasks(), CP->Partition.Choices.size(),
              CP->Partition.numDistinctPartitionings(),
              CP->Partition.Approximate ? "  (sampled regions)" : "");

  struct Scenario {
    const char *Label;
    int64_t ModeS, ModeE, ModeC, Px, Py;
  };
  Scenario Scenarios[] = {
      {"-e thumb 12x10", 0, 1, 0, 12, 10},
      {"-e photo 96x64", 0, 1, 0, 96, 64},
      {"-s -e photo 96x64", 1, 1, 0, 96, 64},
      {"-c photo 96x64", 0, 0, 1, 96, 64},
      {"-s -e -c 128x96", 1, 1, 1, 128, 96},
  };

  std::printf("%-20s | %10s %10s %9s | server instrs\n", "scenario", "local",
              "adaptive", "speedup");
  for (const Scenario &S : Scenarios) {
    std::vector<int64_t> Img = makeImage(unsigned(S.Px), unsigned(S.Py), 7);
    std::vector<int64_t> Params = {S.ModeS, S.ModeE, S.ModeC, S.Px, S.Py,
                                   1,       18,      20,      7,  1,
                                   3,       0};
    ExecOptions Local;
    Local.Mode = ExecOptions::Placement::AllClient;
    Local.ParamValues = Params;
    Local.Inputs = Img;
    ExecResult LocalRun = runProgram(*CP, Local);

    ExecOptions Adaptive = Local;
    Adaptive.Mode = ExecOptions::Placement::Dispatch;
    ExecResult AdaptiveRun = runProgram(*CP, Adaptive);
    if (!LocalRun.OK || !AdaptiveRun.OK) {
      std::fprintf(stderr, "%s failed: %s%s\n", S.Label,
                   LocalRun.Error.c_str(), AdaptiveRun.Error.c_str());
      return 1;
    }
    if (AdaptiveRun.Outputs != LocalRun.Outputs) {
      std::fprintf(stderr, "%s: output mismatch (analysis bug)\n", S.Label);
      return 1;
    }
    std::printf("%-20s | %10.0f %10.0f %8.2fx | %llu\n", S.Label,
                LocalRun.Time.toDouble(), AdaptiveRun.Time.toDouble(),
                LocalRun.Time.toDouble() / AdaptiveRun.Time.toDouble(),
                (unsigned long long)AdaptiveRun.ServerInstrs);
  }
  std::printf("\nAll outputs matched the all-local runs.\n");
  return 0;
}
