//===- examples/adaptive_codec.cpp - Option-adaptive voice codec ----------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's headline scenario (section 6.2, Figure 9): the G.721-style
// encoder behaves very differently under different command options, and
// no fixed partitioning is best for all of them. This example runs the
// encoder under the six option combinations of Figure 9 and shows the
// adaptive dispatch matching the best fixed choice in each column.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "programs/Programs.h"

#include <cstdio>

using namespace paco;
using namespace paco::programs;

int main() {
  std::printf("== adaptive G.721-style voice codec ==\n\n");
  const BenchProgram &Prog = programByName("encode");
  std::string Diags;
  auto CP = compileForOffloading(Prog.Source, CostModel::defaults(), {},
                                 &Diags);
  if (!CP) {
    std::fprintf(stderr, "compilation failed:\n%s", Diags.c_str());
    return 1;
  }
  std::printf("tasks: %u  choices: %zu  distinct partitionings: %u\n\n",
              CP->numRealTasks(), CP->Partition.Choices.size(),
              CP->Partition.numDistinctPartitionings());

  const int64_t Frames = 6, Buf = 512;
  std::vector<int64_t> Samples = makeAudioSamples(Frames * Buf, 2024);

  struct OptionCombo {
    const char *Label;
    int64_t Use3, Use4, FmtA, FmtU;
  };
  OptionCombo Combos[] = {
      {"-3 -l", 1, 0, 0, 0}, {"-4 -l", 0, 1, 0, 0}, {"-5 -l", 0, 0, 0, 0},
      {"-3 -a", 1, 0, 1, 0}, {"-4 -u", 0, 1, 0, 1}, {"-5 -a", 0, 0, 1, 0},
  };

  std::printf("%-8s | %10s %10s %9s | adaptive == best?\n", "options",
              "local", "adaptive", "speedup");
  for (const OptionCombo &Combo : Combos) {
    std::vector<int64_t> Params = {Combo.Use3, Combo.Use4, Combo.FmtA,
                                   Combo.FmtU, Frames, Buf};
    ExecOptions Local;
    Local.Mode = ExecOptions::Placement::AllClient;
    Local.ParamValues = Params;
    Local.Inputs = Samples;
    ExecResult LocalRun = runProgram(*CP, Local);

    ExecOptions Adaptive = Local;
    Adaptive.Mode = ExecOptions::Placement::Dispatch;
    ExecResult AdaptiveRun = runProgram(*CP, Adaptive);
    if (!LocalRun.OK || !AdaptiveRun.OK) {
      std::fprintf(stderr, "%s failed: %s%s\n", Combo.Label,
                   LocalRun.Error.c_str(), AdaptiveRun.Error.c_str());
      return 1;
    }

    // Best fixed partitioning for this option combination.
    double Best = LocalRun.Time.toDouble();
    for (unsigned C = 0; C != CP->Partition.Choices.size(); ++C) {
      ExecOptions Forced = Local;
      Forced.Mode = ExecOptions::Placement::Forced;
      Forced.ForcedChoice = C;
      ExecResult R = runProgram(*CP, Forced);
      if (R.OK && R.Outputs == LocalRun.Outputs)
        Best = std::min(Best, R.Time.toDouble());
    }
    double Adapt = AdaptiveRun.Time.toDouble();
    std::printf("%-8s | %10.0f %10.0f %8.2fx | %s\n", Combo.Label,
                LocalRun.Time.toDouble(), Adapt,
                LocalRun.Time.toDouble() / Adapt,
                Adapt <= Best * 1.01 ? "yes" : "NO");
  }
  return 0;
}
