//===- examples/quickstart.cpp - PACO in five minutes ---------------------===//
//
// Part of the PACO project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure-1 audio pipeline, end to end:
//  1. compile the MiniC program through the offloading pipeline,
//  2. print the partitioning choices with their parameter regions
//     (Figure 2's guarded dispatch),
//  3. execute it at a few parameter points and compare all-local against
//     the self-scheduled adaptive run.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace paco;

namespace {

const char *kAudioPipeline = R"MINIC(
// Figure-1 style audio pipeline: x frames of y samples, z work/sample.
param int x in [1, 64];
param int y in [1, 256];
param int z in [1, 4096];

int *inbuf;
int *outbuf;

void encode_frame() {
  for (int i = 0; i < y; i++) {
    int acc = inbuf[i];
    @trip(z) for (int k = 0; k < 1000000000; k++) {
      if (k >= z) break;
      acc = (acc * 3 + 1) & 65535;
    }
    outbuf[i] = acc;
  }
}

void main() {
  inbuf = malloc(y);
  outbuf = malloc(y);
  for (int j = 0; j < x; j++) {
    for (int i = 0; i < y; i++) inbuf[i] = io_read();
    encode_frame();
    for (int i = 0; i < y; i++) io_write(outbuf[i]);
  }
}
)MINIC";

} // namespace

int main() {
  std::printf("== PACO quickstart: parametric computation offloading ==\n\n");

  std::string Diags;
  auto CP = compileForOffloading(kAudioPipeline, CostModel::defaults(), {},
                                 &Diags);
  if (!CP) {
    std::fprintf(stderr, "compilation failed:\n%s", Diags.c_str());
    return 1;
  }

  std::printf("tasks: %u   partitioning choices: %zu   analysis: %.2fs\n\n",
              CP->numRealTasks(), CP->Partition.Choices.size(),
              CP->Partition.AnalysisSeconds);
  std::printf("%s\n", CP->Partition.describe(CP->Space, CP->Graph).c_str());
  std::printf("%s\n", renderTransformedProgram(*CP).c_str());

  std::printf("-- running at several parameter points --\n");
  std::printf("%8s %8s %8s | %12s %12s %9s | choice\n", "x", "y", "z",
              "local time", "adaptive", "speedup");
  std::vector<int64_t> Inputs(16384, 100);
  for (std::vector<int64_t> Params :
       {std::vector<int64_t>{8, 32, 2}, {8, 32, 200}, {8, 32, 4000},
        {8, 4, 4000}, {2, 256, 1000}}) {
    ExecOptions Local;
    Local.Mode = ExecOptions::Placement::AllClient;
    Local.ParamValues = Params;
    Local.Inputs = Inputs;
    ExecResult LocalRun = runProgram(*CP, Local);

    ExecOptions Adaptive = Local;
    Adaptive.Mode = ExecOptions::Placement::Dispatch;
    ExecResult AdaptiveRun = runProgram(*CP, Adaptive);

    if (!LocalRun.OK || !AdaptiveRun.OK) {
      std::fprintf(stderr, "run failed: %s%s\n", LocalRun.Error.c_str(),
                   AdaptiveRun.Error.c_str());
      return 1;
    }
    if (AdaptiveRun.Outputs != LocalRun.Outputs) {
      std::fprintf(stderr, "output mismatch (analysis bug)\n");
      return 1;
    }
    std::printf("%8lld %8lld %8lld | %12.0f %12.0f %8.2fx | %u\n",
                (long long)Params[0], (long long)Params[1],
                (long long)Params[2], LocalRun.Time.toDouble(),
                AdaptiveRun.Time.toDouble(),
                LocalRun.Time.toDouble() / AdaptiveRun.Time.toDouble(),
                AdaptiveRun.ChoiceUsed + 1);
  }
  std::printf("\nOutputs matched the all-local run at every point.\n");
  return 0;
}
