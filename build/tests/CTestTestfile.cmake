# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/poly_tests[1]_include.cmake")
include("/root/repo/build/tests/netflow_tests[1]_include.cmake")
include("/root/repo/build/tests/lang_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/tcfg_tests[1]_include.cmake")
include("/root/repo/build/tests/partition_tests[1]_include.cmake")
include("/root/repo/build/tests/interp_tests[1]_include.cmake")
include("/root/repo/build/tests/transform_tests[1]_include.cmake")
include("/root/repo/build/tests/runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/printast_tests[1]_include.cmake")
include("/root/repo/build/tests/cost_tests[1]_include.cmake")
add_test(programs_tests "/root/repo/build/tests/programs_tests")
set_tests_properties(programs_tests PROPERTIES  TIMEOUT "3000" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
